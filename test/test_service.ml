(* The compile service: fault survival, the verified cache, the pool's
   typed outcomes and sharded-fuzz determinism.

   The headline QCheck property is the ISSUE's fault-survival gate in
   miniature: arm ANY single service-boundary fault at ANY job and the
   batch still completes — the faulted job ends as the sequential result
   (alpha-renamed) or as a typed failure, every other job is untouched,
   and nothing hangs or raises out of [Service.batch]. *)

module Service = Lslp_service.Service
module Pool = Lslp_service.Pool
module Cache = Lslp_service.Cache
module Shard = Lslp_service.Shard
module Inject = Lslp_robust.Inject
module Budget = Lslp_robust.Budget
module Config = Lslp_core.Config
module Catalog = Lslp_kernels.Catalog
module Stats = Lslp_telemetry.Pool_stats
module Flight = Lslp_obs.Flight
module Registry = Lslp_obs.Registry

let config = Config.lslp
let unroll = 4

let jobs_of kernels =
  Array.of_list
    (List.map
       (fun (k : Catalog.kernel) ->
         { Service.label = k.key; source = k.source; unroll })
       kernels)

(* A small, fixed slice of the catalog keeps each property case cheap. *)
let some_jobs = jobs_of (List.filteri (fun i _ -> i < 8) Catalog.all)
let njobs = Array.length some_jobs

let quiet_pool domains =
  { Pool.default_config with domains; queue_cap = 16; retries = 2 }

(* Sequential, fault-free expectation per job label: what every Done
   outcome must reproduce modulo instruction-id renaming (the service
   already normalizes). *)
let baseline =
  lazy
    (let svc =
       Service.create ~cache:false ~pool:(quiet_pool 1) config
     in
     Array.map
       (function
         | Pool.Done (s : Service.success) -> s.ir
         | Pool.Degraded_to_failure _ ->
           Alcotest.fail "baseline batch degraded without faults")
       (Service.batch svc some_jobs))

(* ---- the fault-survival property ---------------------------------- *)

let fault_survival_prop (point, target, seed) =
  let spec = Inject.make ~points:[ point ] ~rate:1.0 ~seed () in
  let inject_for i = if i = target then Some spec else None in
  let pool =
    { (quiet_pool 4) with deadline_steps = Some 50_000 }
  in
  let svc = Service.create ~cache:true ~inject_for ~pool config in
  let outcomes = Service.batch svc some_jobs in
  let expected = Lazy.force baseline in
  Array.length outcomes = njobs
  && Array.for_all
       (fun i ->
         match outcomes.(i) with
         | Pool.Done (s : Service.success) -> s.ir = expected.(i)
         | Pool.Degraded_to_failure _ -> i = target)
       (Array.init njobs (fun i -> i))

let fault_survival =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:24
       ~name:"any single service fault -> complete batch, typed failures"
       ~print:(fun (p, t, s) ->
         Fmt.str "%s@job%d seed=%d" (Inject.point_name p) t s)
       QCheck2.Gen.(
         triple (oneofl Inject.service_points) (int_bound (njobs - 1))
           (int_bound 1000))
       fault_survival_prop)

(* ---- flight recorder vs counters: exact reconciliation ------------- *)

(* For any single service fault, the flight recording and the counter
   view must tell the same story: every job's recording ends in exactly
   one terminal event (completed | failed | shed), the per-kind event
   counts equal the terminal counters, and the histograms saw exactly
   the jobs their instrumentation point covers — latency one sample per
   completion, attempts one sample per completed-or-failed job.  No
   tolerance anywhere: a single double-count or missed event fails. *)
let metrics_reconcile_prop (point, target, seed) =
  let spec = Inject.make ~points:[ point ] ~rate:1.0 ~seed () in
  let inject_for i = if i = target then Some spec else None in
  let pool = { (quiet_pool 4) with deadline_steps = Some 50_000 } in
  let svc = Service.create ~cache:true ~inject_for ~pool config in
  let outcomes = Service.batch svc some_jobs in
  let s = Service.stats svc in
  let terminal = Hashtbl.create 16 in
  List.iter
    (fun (e : Flight.event) ->
      match e.Flight.kind with
      | ("completed" | "failed" | "shed") as kind ->
        Hashtbl.replace terminal e.Flight.job
          (kind
           :: (Option.value ~default:[]
                 (Hashtbl.find_opt terminal e.Flight.job)))
      | _ -> ())
    (Flight.events (Service.flight svc));
  let count kind =
    Hashtbl.fold
      (fun _ kinds acc ->
        acc + List.length (List.filter (String.equal kind) kinds))
      terminal 0
  in
  let hcount name =
    match Registry.histogram_view (Service.registry svc) name with
    | Some v -> v.Registry.hcount
    | None -> -1
  in
  let one_terminal_each =
    Array.for_all
      (fun (j : Service.job) ->
        match Hashtbl.find_opt terminal j.Service.label with
        | Some [ _ ] -> true
        | Some _ | None -> false)
      some_jobs
  in
  one_terminal_each
  && Array.length outcomes = njobs
  && count "completed" = s.Stats.jobs_completed
  && count "failed" = s.Stats.jobs_failed
  && count "shed" = s.Stats.jobs_shed
  && s.Stats.jobs_completed + s.Stats.jobs_failed + s.Stats.jobs_shed
     = njobs
  && s.Stats.jobs_submitted = njobs
  && hcount "lslp_job_latency_ticks" = s.Stats.jobs_completed
  && hcount "lslp_job_attempts"
     = s.Stats.jobs_completed + s.Stats.jobs_failed

let metrics_reconcile =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:24
       ~name:"any single service fault -> flight events reconcile with stats"
       ~print:(fun (p, t, s) ->
         Fmt.str "%s@job%d seed=%d" (Inject.point_name p) t s)
       QCheck2.Gen.(
         triple (oneofl Inject.service_points) (int_bound (njobs - 1))
           (int_bound 1000))
       metrics_reconcile_prop)

(* ---- pool outcomes ------------------------------------------------- *)

(* worker-raise at rate 1.0: every attempt crashes, the retry cap is
   consumed, the job degrades with the crash recorded, and the pool
   respawned a worker per death without losing any other job. *)
let pool_retries_exhausted () =
  let spec = Inject.make ~points:[ Inject.Worker_raise ] ~rate:1.0 ~seed:7 () in
  let inject_for i = if i = 2 then Some spec else None in
  let svc = Service.create ~cache:false ~inject_for ~pool:(quiet_pool 4) config in
  let outcomes = Service.batch svc some_jobs in
  (match outcomes.(2) with
   | Pool.Degraded_to_failure { attempts; failure = Pool.Crashed _ } ->
     Helpers.check_int "attempts = 1 + retries" 3 attempts
   | Pool.Degraded_to_failure { failure; _ } ->
     Alcotest.failf "wrong failure: %a" Pool.pp_failure failure
   | Pool.Done _ -> Alcotest.fail "job 2 should have degraded");
  let s = Service.stats svc in
  Helpers.check_int "retried" 2 s.Stats.jobs_retried;
  Helpers.check_int "failed" 1 s.Stats.jobs_failed;
  Array.iteri
    (fun i o ->
      if i <> 2 then
        match o with
        | Pool.Done _ -> ()
        | Pool.Degraded_to_failure _ ->
          Alcotest.failf "job %d degraded without a fault" i)
    outcomes

let pool_shed () =
  let spec = Inject.make ~points:[ Inject.Queue_full ] ~rate:1.0 ~seed:1 () in
  let inject_for i = if i = 0 then Some spec else None in
  let svc = Service.create ~cache:false ~inject_for ~pool:(quiet_pool 2) config in
  let outcomes = Service.batch svc some_jobs in
  (match outcomes.(0) with
   | Pool.Degraded_to_failure { attempts = 0; failure = Pool.Shed } -> ()
   | _ -> Alcotest.fail "job 0 should have been shed at admission");
  Helpers.check_int "shed counter" 1 (Service.stats svc).Stats.jobs_shed

let pool_deadline () =
  let pool = { (quiet_pool 2) with deadline_steps = Some 1; retries = 0 } in
  let svc = Service.create ~cache:false ~pool config in
  let outcomes = Service.batch svc some_jobs in
  Array.iter
    (function
      | Pool.Degraded_to_failure { failure = Pool.Timed_out { steps = 1 }; _ }
        -> ()
      | Pool.Degraded_to_failure { failure; _ } ->
        Alcotest.failf "wrong failure: %a" Pool.pp_failure failure
      | Pool.Done _ ->
        Alcotest.fail "a 1-step deadline cannot fit any kernel")
    outcomes;
  Helpers.check_int "timeouts" njobs
    (Service.stats svc).Stats.jobs_timed_out

(* The deadline cancels the whole job and restores the function: after
   [Deadline_expired] propagates out of Pipeline.run, the input is
   byte-identical to what went in. *)
let deadline_restores () =
  let f = Catalog.compile_key "453.vsumsqr" in
  ignore (Lslp_frontend.Unroll.run ~factor:unroll f);
  let before = Fmt.str "%a" Lslp_ir.Printer.pp_func f in
  let config = Config.with_deadline (Budget.deadline 2) config in
  (match Lslp_core.Pipeline.run ~config f with
   | _ -> Alcotest.fail "a 2-step deadline cannot fit this kernel"
   | exception Budget.Deadline_expired { steps } ->
     Helpers.check_int "expired at the configured budget" 2 steps);
  Helpers.check_string "function restored on cancellation" before
    (Fmt.str "%a" Lslp_ir.Printer.pp_func f)

(* ---- the verified cache ------------------------------------------- *)

(* Round 1 misses and inserts; round 2 front-hits, re-verifies every hit
   and serves the identical payload. *)
let cache_hit_verify () =
  let svc = Service.create ~cache:true ~pool:(quiet_pool 1) config in
  let cold = Service.batch svc some_jobs in
  let warm = Service.batch ~index_base:njobs svc some_jobs in
  let s = Service.stats svc in
  Helpers.check_int "misses (cold round)" njobs s.Stats.cache_misses;
  Helpers.check_int "inserts (cold round)" njobs s.Stats.cache_inserts;
  Helpers.check_int "hits (warm round)" njobs s.Stats.cache_hits;
  Helpers.check_int "every hit verified" njobs s.Stats.cache_verified;
  Helpers.check_int "no evictions" 0 s.Stats.cache_evicted;
  Array.iteri
    (fun i cold_o ->
      match (cold_o, warm.(i)) with
      | Pool.Done (c : Service.success), Pool.Done (w : Service.success) ->
        Helpers.check_bool "cold round compiled" false c.from_cache;
        Helpers.check_bool "warm round cached" true w.from_cache;
        Helpers.check_string "identical IR" c.ir w.ir;
        Helpers.check_string "identical remarks" (String.concat "\n" c.remarks)
          (String.concat "\n" w.remarks)
      | _ -> Alcotest.fail "clean batches cannot degrade")
    cold

(* Poison one warm job's entry: verification must catch the damage, evict
   and recompile — the job still succeeds with the baseline IR, and the
   eviction is counted. *)
let cache_poison_evicts () =
  let target = njobs + 3 in
  let spec = Inject.make ~points:[ Inject.Cache_poison ] ~rate:1.0 ~seed:5 () in
  let inject_for i = if i = target then Some spec else None in
  let svc = Service.create ~cache:true ~inject_for ~pool:(quiet_pool 1) config in
  let _cold = Service.batch svc some_jobs in
  let warm = Service.batch ~index_base:njobs svc some_jobs in
  let s = Service.stats svc in
  Helpers.check_int "one eviction" 1 s.Stats.cache_evicted;
  (match warm.(3) with
   | Pool.Done (w : Service.success) ->
     Helpers.check_bool "poisoned entry not served from cache" false
       w.from_cache;
     Helpers.check_string "recompiled to the baseline IR"
       (Lazy.force baseline).(3) w.ir
   | Pool.Degraded_to_failure _ ->
     Alcotest.fail "a poisoned cache must recompile, not fail");
  (* the poisoned-and-evicted entry stayed out: the targeted job's
     injector was armed, so nothing was re-inserted for it *)
  Helpers.check_int "entry count" (njobs - 1) (Service.cache_entries svc)

let cache_off () =
  let svc = Service.create ~cache:false ~pool:(quiet_pool 1) config in
  let r1 = Service.batch svc some_jobs in
  let r2 = Service.batch ~index_base:njobs svc some_jobs in
  let s = Service.stats svc in
  Helpers.check_int "no hits" 0 s.Stats.cache_hits;
  Helpers.check_int "no inserts" 0 s.Stats.cache_inserts;
  Array.iter
    (function
      | Pool.Done (x : Service.success) ->
        Helpers.check_bool "never from cache" false x.from_cache
      | Pool.Degraded_to_failure _ -> Alcotest.fail "clean batch degraded")
    (Array.append r1 r2)

(* ---- sharded fuzzing ---------------------------------------------- *)

let shard_determinism () =
  let pool = { Pool.default_config with domains = 4; queue_cap = 16 } in
  let outcomes = Shard.run ~pool ~cases:40 ~seed:11 () in
  let totals = Shard.summarize outcomes in
  Helpers.check_int "all cases ran" 40 totals.Shard.cases;
  Helpers.check_int "no pool failures" 0 totals.Shard.pool_failures;
  (match Shard.check_against_sequential ~seed:11 outcomes with
   | [] -> ()
   | m :: _ ->
     Alcotest.failf "case %d diverged: sharded %s vs sequential %s"
       m.Shard.case m.Shard.sharded m.Shard.sequential);
  match totals.Shard.failures with
  | [] -> ()
  | (case, summary) :: _ ->
    Alcotest.failf "fuzz case %d failed under sharding: %s" case summary

let suite =
  [
    fault_survival;
    metrics_reconcile;
    Helpers.tc "pool: retries exhausted -> typed crash" pool_retries_exhausted;
    Helpers.tc "pool: queue-full fault -> typed shed" pool_shed;
    Helpers.tc "pool: 1-step deadline times every job out" pool_deadline;
    Helpers.tc "deadline: cancellation restores the function"
      deadline_restores;
    Helpers.tc "cache: warm round hits, verifies, reuses" cache_hit_verify;
    Helpers.tc "cache: poisoned entry evicts and recompiles"
      cache_poison_evicts;
    Helpers.tc "cache: off means off" cache_off;
    Helpers.tc "shard: 4-domain fuzz == sequential, case by case"
      shard_determinism;
  ]
