(* The legality validator and the remarks engine.

   Mutation coverage: each way of corrupting a transformed function (lanes
   that were dependent, a schedule violating the original dependences, a
   lane-count lie in the provenance) must produce a diagnostic — and the
   genuine pipeline output must produce none, across the whole catalog. *)

open Lslp_ir
open Lslp_core
open Lslp_check
open Helpers

let has_rule rule diags =
  List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.rule = rule) diags

let show_diags diags =
  String.concat "; " (List.map Diagnostic.to_string diags)

let find_binop op f =
  Block.find_all (fun i -> Instr.binop i = Some op) (Func.entry f)

let vec2_of op a b =
  Instr.create ~name:"v"
    (Instr.Binop (op, Instr.Ins a, Instr.Ins b))
    (Types.vec Types.F64 2)

let swap_in_block (b : Block.t) x y =
  Block.set_order b
    (List.map
       (fun i ->
         if Instr.equal i x then y else if Instr.equal i y then x else i)
       (Block.to_list b))

(* ---- mutation tests: seeded corruptions must be caught ------------- *)

let test_dependent_lanes () =
  let f = compile
      "kernel k(f64 A[], f64 B[], f64 C[], f64 D[], i64 i) {\n\
      \  A[i] = (B[i] + C[i]) + D[i];\n\
       }"
  in
  let snap = Legality.snapshot f in
  match find_binop Opcode.Fadd f with
  | [ inner; outer ] ->
    let provenance =
      [ { Legality.lanes = [| inner; outer |];
          vector = vec2_of Opcode.Fadd inner outer } ]
    in
    let diags = Legality.validate ~provenance snap f in
    check_bool "dependent lanes flagged" true
      (has_rule "lane-independence" diags)
  | adds -> Alcotest.failf "expected 2 adds, got %d" (List.length adds)

let two_lane_src =
  "kernel k(f64 A[], f64 B[], f64 C[], i64 i) {\n\
  \  A[i] = B[i] + C[i];\n\
  \  A[i+1] = B[i+1] + C[i+1];\n\
   }"

let test_independent_lanes_clean () =
  let f = compile two_lane_src in
  let snap = Legality.snapshot f in
  match find_binop Opcode.Fadd f with
  | [ a1; a2 ] ->
    let provenance =
      [ { Legality.lanes = [| a1; a2 |]; vector = vec2_of Opcode.Fadd a1 a2 } ]
    in
    let diags = Legality.validate ~provenance snap f in
    check_string "no diagnostics" "" (show_diags diags)
  | adds -> Alcotest.failf "expected 2 adds, got %d" (List.length adds)

let test_broken_schedule () =
  let f = compile
      "kernel k(f64 A[], f64 B[], f64 C[], i64 i) {\n\
      \  A[i] = B[i] + C[i];\n\
      \  A[i+1] = B[i+1] + C[i+1];\n\
      \  C[i+9] = B[i+9] * 3.0;\n\
       }"
  in
  let g = Func.clone f in
  let snap = Legality.snapshot g in
  ignore (Pipeline.run ~config:Config.lslp g);
  check_string "clean before corruption" ""
    (show_diags (Legality.validate snap g));
  (* the surviving scalar chain: swap the store with the mul it consumes *)
  let store =
    List.hd
      (Block.find_all
         (fun i ->
           Instr.is_store i
           && match Instr.address i with
              | Some a -> a.Instr.base = "C"
              | None -> false)
         (Func.entry g))
  in
  let mul = List.hd (find_binop Opcode.Fmul g) in
  swap_in_block (Func.entry g) store mul;
  let diags = Legality.validate snap g in
  check_bool "violated order flagged" true (has_rule "dependence-order" diags)

let test_wrong_lane_count () =
  let f = compile two_lane_src in
  let snap = Legality.snapshot f in
  match find_binop Opcode.Fadd f with
  | [ a1; a2 ] ->
    let wide =
      Instr.create ~name:"v"
        (Instr.Binop (Opcode.Fadd, Instr.Ins a1, Instr.Ins a2))
        (Types.vec Types.F64 4)
    in
    let provenance = [ { Legality.lanes = [| a1; a2 |]; vector = wide } ] in
    let diags = Legality.validate ~provenance snap f in
    check_bool "lane-count lie flagged" true (has_rule "bundle-typing" diags)
  | adds -> Alcotest.failf "expected 2 adds, got %d" (List.length adds)

let test_mismatched_opcode () =
  let f = compile two_lane_src in
  let snap = Legality.snapshot f in
  let deps = Lslp_analysis.Depgraph.build (Func.entry f) in
  let add = List.hd (find_binop Opcode.Fadd f) in
  (* a load the add does not consume, so only the opcode check can fire *)
  let load =
    List.hd
      (List.filter
         (fun i -> not (Lslp_analysis.Depgraph.depends deps add ~on:i))
         (Block.find_all Instr.is_load (Func.entry f)))
  in
  let provenance =
    [ { Legality.lanes = [| add; load |]; vector = vec2_of Opcode.Fadd add load } ]
  in
  let diags = Legality.validate ~provenance snap f in
  check_bool "opcode mismatch flagged" true (has_rule "bundle-typing" diags)

(* ---- mutation tests: masked IR ------------------------------------- *)

let cond_src =
  "kernel k(f64 g[], f64 a[], f64 y[], i64 i) {\n\
  \  if (g[i] < 0.0) { a[i] = 1.5; }\n\
  \  y[i] = a[i] * 2.0;\n\
   }"

let find_masked_store f =
  List.hd
    (Block.find_all
       (fun i ->
         match i.Instr.kind with Instr.Masked_store _ -> true | _ -> false)
       (Func.entry f))

let test_corrupt_mask_operand () =
  (* swap the masked store's i1 mask for an i64 constant: the verifier
     must reject the function with a typed message, not misexecute it *)
  let f = compile cond_src in
  Verifier.verify_exn f;
  let ms = find_masked_store f in
  (match ms.Instr.kind with
   | Instr.Masked_store (a, v, _) ->
     Instr.set_kind ms
       (Instr.Masked_store (a, v, Instr.Const (Instr.Cint 1L)))
   | _ -> assert false);
  match Verifier.check_func f with
  | [] -> Alcotest.fail "corrupt mask accepted"
  | e :: _ ->
    let msg = Verifier.error_to_string e in
    check_bool (Fmt.str "names the mask (%s)" msg) true
      (String.length msg > 0)

let test_corrupt_select_mask () =
  let f =
    compile
      "kernel k(f64 x[], f64 y[], i64 i) {\n\
      \  if (x[i] < 0.5) { f64 t = 1.0; } else { f64 t = 2.0; }\n\
      \  y[i] = t;\n\
       }"
  in
  Verifier.verify_exn f;
  let sel =
    List.hd
      (Block.find_all
         (fun i ->
           match i.Instr.kind with Instr.Select _ -> true | _ -> false)
         (Func.entry f))
  in
  (match sel.Instr.kind with
   | Instr.Select (_, a, b) ->
     Instr.set_kind sel
       (Instr.Select (Instr.Const (Instr.Cfloat 1.0), a, b))
   | _ -> assert false);
  check_bool "non-mask selector rejected" true (Verifier.check_func f <> [])

let test_masked_store_reordered_past_load () =
  (* a masked store is a may-write: moving it past a load of the same
     array must violate the recorded dependence order *)
  let f = compile cond_src in
  let snap = Legality.snapshot f in
  check_string "clean before corruption" ""
    (show_diags (Legality.validate snap f));
  let ms = find_masked_store f in
  let load =
    List.hd
      (Block.find_all
         (fun i ->
           Instr.is_load i
           && match Instr.address i with
              | Some a -> a.Instr.base = "a"
              | None -> false)
         (Func.entry f))
  in
  swap_in_block (Func.entry f) ms load;
  let diags = Legality.validate snap f in
  check_bool "violated order flagged" true (has_rule "dependence-order" diags)

(* ---- the genuine pipeline must validate cleanly -------------------- *)

let main_configs = [ Config.slp_nr; Config.slp; Config.lslp ]

let test_catalog_clean () =
  List.iter
    (fun (k : Lslp_kernels.Catalog.kernel) ->
      List.iter
        (fun config ->
          let config = Config.with_validate true config in
          let report, _ =
            Pipeline.run_cloned ~config (Lslp_kernels.Catalog.compile k)
          in
          match report.Pipeline.diagnostics with
          | [] -> ()
          | ds ->
            Alcotest.failf "%s under %s: %s" k.key config.Config.name
              (show_diags ds))
        main_configs)
    Lslp_kernels.Catalog.all

(* ---- verifier checkpoints ------------------------------------------ *)

let test_checkpoints_silent () =
  (* with validation on, the per-pass structural checkpoints must stay
     silent on well-formed input — and the report must carry them as
     diagnostics, not exceptions, if they ever fire *)
  let f = kernel "453.vsumsqr" in
  let config = Config.with_validate true Config.lslp in
  let report, g = Pipeline.run_cloned ~config f in
  check_string "no checkpoint diagnostics" ""
    (show_diags report.Pipeline.diagnostics);
  assert_sound ~reference:f ~candidate:g ()

(* ---- remarks engine ------------------------------------------------ *)

let analyze ?(config = Config.lslp) f =
  let config = Config.(config |> with_remarks true |> with_validate true) in
  Pipeline.run_cloned ~config f

let test_remark_vectorized () =
  let report, _ = analyze (kernel "motivation-multi") in
  match report.Pipeline.remarks with
  | r :: _ ->
    check_bool "vectorized outcome" true (r.Remark.outcome = Remark.Vectorized);
    check_bool "cost recorded" true (r.Remark.cost <> None);
    let lines = Remark.explain r in
    check_bool "outcome rule fires" true
      (List.mem_assoc "outcome" lines)
  | [] -> Alcotest.fail "no remarks"

let test_remark_seed_rejected () =
  (* the second store reads the first one's output: the seed bundle's lanes
     depend on one another, so the region never vectorizes *)
  let f = compile
      "kernel dep(i64 A[], i64 B[], i64 i) {\n\
      \  A[i] = B[i] << 1;\n\
      \  A[i+1] = A[i] << 1;\n\
       }"
  in
  let report, _ = analyze f in
  match report.Pipeline.remarks with
  | r :: _ ->
    check_bool "kept scalar" true (r.Remark.outcome = Remark.Unprofitable);
    check_bool "seed rejection noted" true
      (List.exists
         (function Remark.Seed_rejected _ -> true | _ -> false)
         r.Remark.notes)
  | [] -> Alcotest.fail "no remarks"

let test_remark_gathered_columns () =
  let report, _ = analyze ~config:Config.slp_nr (kernel "motivation-opcodes") in
  match report.Pipeline.remarks with
  | r :: _ ->
    check_bool "column rejections noted" true
      (List.exists
         (function Remark.Column_rejected _ -> true | _ -> false)
         r.Remark.notes)
  | [] -> Alcotest.fail "no remarks"

let test_remarks_cover_regions () =
  (* one remark per region considered, across the catalog *)
  List.iter
    (fun (k : Lslp_kernels.Catalog.kernel) ->
      let report, _ = analyze (Lslp_kernels.Catalog.compile k) in
      let seed_remarks =
        List.filter
          (fun (r : Remark.t) ->
            match r.Remark.outcome with
            | Remark.Reduction_unmatched _ -> false
            | _ -> true)
          report.Pipeline.remarks
      in
      check_int
        (Fmt.str "%s: remark per region" k.key)
        (List.length report.Pipeline.regions)
        (List.length seed_remarks))
    Lslp_kernels.Catalog.all

let test_custom_rule () =
  let rule =
    { Remark.rule_name = "test-threshold";
      produce =
        (fun r -> if r.Remark.threshold = 0 then Some "default threshold" else None) }
  in
  Remark.register_rule rule;
  let report, _ = analyze (kernel "motivation-loads") in
  match report.Pipeline.remarks with
  | r :: _ ->
    check_bool "custom rule fires" true
      (List.mem_assoc "test-threshold" (Remark.explain r))
  | [] -> Alcotest.fail "no remarks"

let test_json_escaping () =
  let r =
    {
      Remark.region = "weird \"name\"\n";
      block = "entry";
      lanes = 2;
      cost = None;
      threshold = 0;
      outcome = Remark.Not_schedulable;
      notes = [];
    }
  in
  let json =
    Remark.report_to_json ~config_name:"LSLP" ~func_name:"f" ~diagnostics:[]
      [ r ]
  in
  let contains ~sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s
                   && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "quotes escaped" true
    (contains ~sub:{|weird \"name\"\n|} json);
  check_bool "null cost" true (contains ~sub:{|"cost":null|} json);
  check_bool "outcome tagged" true
    (contains ~sub:{|"outcome":"not-schedulable"|} json)

(* ---- properties: validator holds over random inputs ---------------- *)

let gen_config =
  let open QCheck2.Gen in
  oneof
    [
      oneofl [ Config.slp_nr; Config.slp; Config.lslp ];
      (let* d = int_bound 8 in
       return (Config.lslp_la d));
      (let* m = int_range 1 4 in
       return (Config.lslp_multi m));
    ]

let validates_and_equivalent config reference =
  let config = Config.with_validate true config in
  let report, candidate = Pipeline.run_cloned ~config reference in
  report.Pipeline.diagnostics = []
  && Lslp_interp.Oracle.equivalent ~tol:1e-6 ~reference ~candidate ()

let qcheck_catalog =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"catalog kernels validate and stay equivalent under random \
              configs"
       ~print:(fun (key, (config : Config.t)) ->
         Fmt.str "%s under %s" key config.Config.name)
       QCheck2.Gen.(
         pair
           (oneofl
              (List.map
                 (fun (k : Lslp_kernels.Catalog.kernel) -> k.key)
                 Lslp_kernels.Catalog.all))
           gen_config)
       (fun (key, config) -> validates_and_equivalent config (kernel key)))

let qcheck_random =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100
       ~name:"random kernels validate and stay equivalent under random \
              configs"
       ~print:(fun (d, (config : Config.t)) ->
         Fmt.str "%s under %s" (Test_qcheck.print_kdesc d) config.Config.name)
       QCheck2.Gen.(pair Test_qcheck.gen_kdesc gen_config)
       (fun (d, config) ->
         validates_and_equivalent config (Test_qcheck.build_kernel d)))

let suite =
  [
    tc "fabricated dependent lanes are flagged" test_dependent_lanes;
    tc "independent lanes validate cleanly" test_independent_lanes_clean;
    tc "broken schedule is flagged" test_broken_schedule;
    tc "provenance lane-count lie is flagged" test_wrong_lane_count;
    tc "mismatched lane opcode is flagged" test_mismatched_opcode;
    tc "corrupt masked-store mask operand is flagged" test_corrupt_mask_operand;
    tc "non-mask select selector is flagged" test_corrupt_select_mask;
    tc "masked store reordered past an overlapping load is flagged"
      test_masked_store_reordered_past_load;
    tc "whole catalog validates cleanly under all main configs"
      test_catalog_clean;
    tc "verifier checkpoints stay silent on well-formed input"
      test_checkpoints_silent;
    tc "vectorized region gets an outcome remark with its cost"
      test_remark_vectorized;
    tc "rejected seed names its rejection reason" test_remark_seed_rejected;
    tc "gathered operand columns are noted" test_remark_gathered_columns;
    tc "one remark per region across the catalog" test_remarks_cover_regions;
    tc "custom rules join the registry" test_custom_rule;
    tc "JSON output escapes strings and encodes null costs"
      test_json_escaping;
    qcheck_catalog;
    qcheck_random;
  ]
