(* Id_gen: the Atomic-backed id source behind instruction ids, graph
   node ids and trace gids.  The property that matters for the parallel
   compile service is uniqueness under concurrent draws: d domains
   hammering one shared generator must receive d*k distinct, dense
   ids. *)

module Id_gen = Lslp_util.Id_gen

let tc = Helpers.tc
let check_int = Helpers.check_int

let sequence () =
  let g = Id_gen.create () in
  check_int "defaults to 0" 0 (Id_gen.next g);
  check_int "then 1" 1 (Id_gen.next g);
  check_int "peek does not consume" 2 (Id_gen.peek g);
  check_int "peek is stable" 2 (Id_gen.peek g);
  check_int "issued" 2 (Id_gen.issued g)

let first () =
  let g = Id_gen.create ~first:1 () in
  check_int "starts at first" 1 (Id_gen.next g);
  check_int "issued counts from first" 1 (Id_gen.issued g)

let independent () =
  let a = Id_gen.create () and b = Id_gen.create () in
  ignore (Id_gen.next a);
  ignore (Id_gen.next a);
  check_int "generators are independent" 0 (Id_gen.next b)

(* d domains × k draws from one shared generator. *)
let draw_concurrently ~domains ~draws =
  let g = Id_gen.create ~first:1 () in
  let worker () = Array.init draws (fun _ -> Id_gen.next g) in
  let pool = List.init domains (fun _ -> Domain.spawn worker) in
  List.concat_map (fun d -> Array.to_list (Domain.join d)) pool

let unique_under_domains () =
  let all = draw_concurrently ~domains:4 ~draws:5000 in
  let sorted = List.sort_uniq Int.compare all in
  check_int "no duplicates" (List.length all) (List.length sorted);
  check_int "dense from first" 1 (List.hd sorted);
  check_int "dense to last" (List.length all)
    (List.nth sorted (List.length sorted - 1))

let qcheck_unique =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"ids unique and dense under domains"
       QCheck2.Gen.(pair (int_range 2 6) (int_range 1 400))
       (fun (domains, draws) ->
         let all = draw_concurrently ~domains ~draws in
         let sorted = List.sort_uniq Int.compare all in
         List.length all = domains * draws
         && List.length sorted = List.length all
         && List.hd sorted = 1
         && List.nth sorted (List.length sorted - 1) = List.length all))

let suite =
  [
    tc "sequence" sequence;
    tc "first offset" first;
    tc "independent generators" independent;
    tc "unique under 4 domains" unique_under_domains;
    qcheck_unique;
  ]
