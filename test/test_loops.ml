(* The region layer: for-loop parsing/lowering, the unroll (region
   formation) pass, self-contained-region enforcement, cloning across
   blocks, loop execution in the interpreter, and the loop kernels
   end-to-end through the pipeline. *)

open Lslp_ir
open Lslp_core
open Helpers

let unroll = Lslp_frontend.Unroll.run

let compile_unrolled ?(factor = 4) key =
  let f = Lslp_kernels.Catalog.compile_key key in
  ignore (unroll ~factor f);
  f

let loop_block f =
  match List.filter Block.is_loop (Func.blocks f) with
  | [ b ] -> b
  | bs -> Alcotest.failf "expected exactly one loop block, got %d" (List.length bs)

let info b =
  match Block.loop_info b with
  | Some li -> li
  | None -> Alcotest.fail "expected a loop block"

let labels f = List.map Block.label (Func.blocks f)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go k = k + n <= m && (String.sub s k n = sub || go (k + 1)) in
  n = 0 || go 0

let expect_lower_error substring src =
  match compile src with
  | exception Lslp_frontend.Lower.Error (msg, _) ->
    check_bool
      (Fmt.str "error mentions %S (got %S)" substring msg)
      true
      (contains ~sub:substring msg)
  | _f -> Alcotest.failf "expected a lowering error mentioning %S" substring

(* ---- frontend: parsing and lowering ------------------------------- *)

let frontend_tests =
  [
    tc "a for loop lowers to one loop block" (fun () ->
        let f =
          compile
            {|
kernel k(f64 Y[], f64 X[]) {
  for (i64 i = 0; i < 64; i += 1) {
    Y[i] = X[i] + 1.0;
  }
}
|}
        in
        check_int "one block" 1 (List.length (Func.blocks f));
        let li = info (loop_block f) in
        check_string "counter" "i" li.Block.counter;
        check_int "start" 0 li.Block.l_start;
        check_bool "stop" true (li.Block.l_stop = Block.Bound_const 64);
        check_int "step" 1 li.Block.l_step;
        check_int "trip count" 64
          (Option.get (Block.trip_count li));
        Verifier.verify_exn f);
    tc "straight code before and after the loop gets its own blocks"
      (fun () ->
        let f =
          compile
            {|
kernel k(f64 Y[], f64 X[]) {
  Y[0] = X[0];
  for (i64 i = 1; i < 9; i += 2) {
    Y[i] = X[i] + 1.0;
  }
  Y[9] = X[9];
}
|}
        in
        check_int "three blocks" 3 (List.length (Func.blocks f));
        (match Func.blocks f with
         | [ a; b; c ] ->
           check_bool "entry straight" false (Block.is_loop a);
           check_bool "middle loop" true (Block.is_loop b);
           check_bool "tail straight" false (Block.is_loop c);
           check_int "loop start" 1 (info b).Block.l_start;
           check_int "loop step" 2 (info b).Block.l_step
         | _ -> Alcotest.fail "expected 3 blocks");
        Verifier.verify_exn f);
    tc "a symbolic bound becomes Bound_sym" (fun () ->
        let f =
          compile
            {|
kernel k(f64 Y[], i64 n) {
  for (i64 i = 0; i < n; i += 1) {
    Y[i] = 2.0;
  }
}
|}
        in
        let li = info (loop_block f) in
        check_bool "bound_sym n" true (li.Block.l_stop = Block.Bound_sym "n");
        check_bool "no trip count" true (Block.trip_count li = None);
        Verifier.verify_exn f);
    tc "nested loops are rejected" (fun () ->
        expect_lower_error "nested loops"
          {|
kernel k(f64 Y[]) {
  for (i64 i = 0; i < 4; i += 1) {
    for (i64 j = 0; j < 4; j += 1) {
      Y[i] = 1.0;
    }
  }
}
|});
    tc "the counter cannot be used as a value" (fun () ->
        expect_lower_error "array subscripts"
          {|
kernel k(i64 Y[]) {
  for (i64 i = 0; i < 4; i += 1) {
    Y[i] = i;
  }
}
|});
    tc "locals do not cross region boundaries" (fun () ->
        expect_lower_error "different region"
          {|
kernel k(f64 Y[], f64 X[]) {
  f64 t = X[0] * 2.0;
  for (i64 i = 0; i < 4; i += 1) {
    Y[i] = t;
  }
}
|});
    tc "the counter cannot shadow a parameter" (fun () ->
        expect_lower_error "shadows a parameter"
          {|
kernel k(f64 Y[], i64 i) {
  for (i64 i = 0; i < 4; i += 1) {
    Y[i] = 1.0;
  }
}
|});
    tc "the loop bound must be a constant or an i64 parameter" (fun () ->
        expect_lower_error "loop bound"
          {|
kernel k(f64 Y[], i64 n) {
  for (i64 i = 0; i < n + 1; i += 1) {
    Y[i] = 1.0;
  }
}
|});
  ]

(* ---- region formation: the unroll pass ----------------------------- *)

let unroll_tests =
  [
    tc "exact trip count: main loop only, step scaled" (fun () ->
        let f = compile_unrolled ~factor:4 "loop.saxpy" in
        check_bool "labels" true (labels f = [ "loop0.x4" ]);
        let li = info (loop_block f) in
        check_int "step x4" 4 li.Block.l_step;
        check_bool "bound kept" true (li.Block.l_stop = Block.Bound_const 64);
        check_int "body x4" 20 (Func.num_instrs f);
        Verifier.verify_exn f);
    tc "a remainder becomes a pinned straight tail" (fun () ->
        let f =
          compile
            {|
kernel k(f64 Y[], f64 X[]) {
  for (i64 i = 0; i < 10; i += 1) {
    Y[i] = X[i] + 1.0;
  }
}
|}
        in
        check_int "one loop" 1 (unroll ~factor:4 f);
        check_bool "labels" true (labels f = [ "loop0.x4"; "loop0.tail" ]);
        (match Func.blocks f with
         | [ main; tail ] ->
           let li = info main in
           check_bool "main bound trimmed" true
             (li.Block.l_stop = Block.Bound_const 8);
           check_int "main step" 4 li.Block.l_step;
           check_bool "tail straight" false (Block.is_loop tail);
           (* 2 remainder iterations x 3 instructions, counter pinned *)
           check_int "tail size" 6 (Block.length tail);
           Block.iter
             (fun i ->
               match Instr.address i with
               | Some a ->
                 check_bool "tail index is constant" true
                   (Affine.is_const a.Instr.index)
               | None -> ())
             tail
         | _ -> Alcotest.fail "expected main + tail");
        Verifier.verify_exn f);
    tc "trip count <= factor unrolls fully" (fun () ->
        let f =
          compile
            {|
kernel k(f64 Y[], f64 X[]) {
  for (i64 i = 0; i < 3; i += 1) {
    Y[i] = X[i] + 1.0;
  }
}
|}
        in
        check_int "one loop" 1 (unroll ~factor:4 f);
        check_bool "labels" true (labels f = [ "loop0.full" ]);
        check_bool "no loop left" true
          (List.for_all (fun b -> not (Block.is_loop b)) (Func.blocks f));
        check_int "3 copies" 9 (Func.num_instrs f);
        Verifier.verify_exn f);
    tc "symbolic bounds are left untouched" (fun () ->
        let f = Lslp_kernels.Catalog.compile_key "loop.dyn" in
        let before = labels f in
        check_int "nothing unrolled" 0 (unroll ~factor:4 f);
        check_bool "unchanged" true (labels f = before);
        check_bool "still a loop" true (Block.is_loop (loop_block f)));
    tc "factor below 2 disables the pass" (fun () ->
        let f = Lslp_kernels.Catalog.compile_key "loop.saxpy" in
        check_int "factor 1" 0 (unroll ~factor:1 f);
        check_int "factor 0" 0 (unroll ~factor:0 f);
        check_bool "label kept" true (labels f = [ "loop0" ]));
    tc "unrolling preserves semantics on every loop kernel" (fun () ->
        List.iter
          (fun (k : Lslp_kernels.Catalog.kernel) ->
            let reference = Lslp_kernels.Catalog.compile k in
            let candidate = compile_unrolled ~factor:4 k.key in
            assert_sound ~reference ~candidate ())
          Lslp_kernels.Catalog.loops);
    tc "full unroll agrees with the loop interpreter" (fun () ->
        (* straight-line execution of the fully unrolled body must leave the
           same memory as iterating the original loop block *)
        let reference = Lslp_kernels.Catalog.compile_key "loop.stride2" in
        let candidate = compile_unrolled ~factor:16 "loop.stride2" in
        check_bool "fully unrolled" true
          (List.for_all (fun b -> not (Block.is_loop b))
             (Func.blocks candidate));
        assert_sound ~reference ~candidate ());
  ]

(* ---- Func.clone / Instr.copy across blocks (metadata preservation) -- *)

let clone_tests =
  [
    tc "Instr.copy refreshes the id and keeps every other field" (fun () ->
        let f = Lslp_kernels.Catalog.compile_key "loop.saxpy" in
        let i = List.hd (Block.to_list (Func.entry f)) in
        let c = Instr.copy i in
        check_bool "fresh id" true (c.Instr.id <> i.Instr.id);
        check_string "name kept" i.Instr.name c.Instr.name;
        check_bool "type kept" true (Types.equal i.Instr.ty c.Instr.ty);
        check_bool "kind shared" true (c.Instr.kind == i.Instr.kind));
    tc "clone preserves multi-block structure and loop metadata" (fun () ->
        let f =
          compile
            {|
kernel k(f64 Y[], f64 X[]) {
  Y[0] = X[0];
  for (i64 i = 1; i < 9; i += 2) {
    Y[i] = X[i] + 1.0;
  }
  Y[9] = X[9];
}
|}
        in
        let g = Func.clone f in
        check_bool "labels equal" true (labels f = labels g);
        check_int "instr count equal" (Func.num_instrs f) (Func.num_instrs g);
        List.iter2
          (fun bf bg ->
            check_bool "kind equal" true (Block.kind bf = Block.kind bg))
          (Func.blocks f) (Func.blocks g);
        (* fresh instructions, preserved names *)
        let ids h =
          Func.fold_instrs (fun acc i -> i.Instr.id :: acc) [] h
        in
        List.iter
          (fun id -> check_bool "ids disjoint" false (List.mem id (ids f)))
          (ids g);
        List.iter2
          (fun (a : Instr.t) (b : Instr.t) ->
            check_string "names preserved" a.Instr.name b.Instr.name)
          (List.rev (Func.fold_instrs (fun acc i -> i :: acc) [] f))
          (List.rev (Func.fold_instrs (fun acc i -> i :: acc) [] g));
        Verifier.verify_exn g;
        (* the clone is live: mutating it leaves the original intact *)
        let n = Block.length (Func.entry f) in
        Block.remove (Func.entry g) (List.hd (Block.to_list (Func.entry g)));
        check_int "original untouched" n (Block.length (Func.entry f)));
  ]

(* ---- verifier: self-contained regions ------------------------------ *)

let verifier_tests =
  [
    tc "cross-block value references are rejected" (fun () ->
        let f =
          Func.create ~name:"x"
            ~args:[ { Instr.arg_name = "A"; arg_ty = Instr.Array_arg Types.I64 } ]
        in
        let b1 = Func.entry f in
        let load =
          Instr.create ~name:"ld"
            (Instr.Load
               { Instr.base = "A"; index = Affine.const 0; elt = Types.I64;
                 access_lanes = 1 })
            (Types.Scalar Types.I64)
        in
        Block.append b1 load;
        let b2 = Block.create ~label:"b2" () in
        Func.add_block f b2;
        Block.append b2
          (Instr.create ~name:"st"
             (Instr.Store
                ({ Instr.base = "A"; index = Affine.const 1; elt = Types.I64;
                   access_lanes = 1 },
                 Instr.Ins load))
             Types.Void);
        (match Verifier.check_func f with
         | [] -> Alcotest.fail "expected a cross-block error"
         | e :: _ ->
           check_bool "mentions region rule" true
             (contains ~sub:"another block" e.Verifier.message)));
    tc "duplicate block labels are rejected" (fun () ->
        let f = Func.create ~name:"x" ~args:[] in
        Func.add_block f (Block.create ~label:"entry" ());
        check_bool "error" true (Verifier.check_func f <> []));
    tc "loop sanity: step must be positive" (fun () ->
        let f = Func.create ~name:"x" ~args:[] in
        Func.add_block f
          (Block.create ~label:"l"
             ~kind:
               (Block.Loop
                  { Block.counter = "i"; l_start = 0;
                    l_stop = Block.Bound_const 4; l_step = 0 })
             ());
        check_bool "error" true (Verifier.check_func f <> []));
    tc "loop sanity: symbolic bound must be an i64 argument" (fun () ->
        let f = Func.create ~name:"x" ~args:[] in
        Func.add_block f
          (Block.create ~label:"l"
             ~kind:
               (Block.Loop
                  { Block.counter = "i"; l_start = 0;
                    l_stop = Block.Bound_sym "zz"; l_step = 1 })
             ());
        check_bool "error" true (Verifier.check_func f <> []));
  ]

(* ---- the loop kernels end-to-end ----------------------------------- *)

let pipeline_tests =
  [
    tc "loop.saxpy vectorizes through region formation, zero diagnostics"
      (fun () ->
        let reference = Lslp_kernels.Catalog.compile_key "loop.saxpy" in
        let f = compile_unrolled "loop.saxpy" in
        let config = Config.with_validate true Config.lslp in
        let report, g = Pipeline.run_cloned ~config f in
        check_int "one region vectorized" 1
          report.Pipeline.vectorized_regions;
        check_int "no diagnostics" 0
          (List.length report.Pipeline.diagnostics);
        (match report.Pipeline.regions with
         | [ r ] ->
           check_string "region id" "loop0.x4" r.Pipeline.region_id;
           check_bool "vectorized" true r.Pipeline.vectorized
         | _ -> Alcotest.fail "expected one region");
        check_bool "wide store emitted" true
          (count_insts is_wide_store g = 1);
        assert_sound ~reference ~candidate:g ());
    tc "every loop kernel survives unroll + vectorize under every config"
      (fun () ->
        List.iter
          (fun (k : Lslp_kernels.Catalog.kernel) ->
            List.iter
              (fun config ->
                let reference = Lslp_kernels.Catalog.compile k in
                let f = compile_unrolled k.key in
                let config = Config.with_validate true config in
                let report, g = Pipeline.run_cloned ~config f in
                check_int
                  (Fmt.str "%s/%s: no diagnostics" k.key config.Config.name)
                  0
                  (List.length report.Pipeline.diagnostics);
                assert_sound ~reference ~candidate:g ())
              [ Config.slp_nr; Config.slp; Config.lslp ])
          Lslp_kernels.Catalog.loops);
    tc "loop.dot-serial and loop.dyn stay scalar" (fun () ->
        List.iter
          (fun key ->
            let f = compile_unrolled key in
            let report, g = Pipeline.run_cloned ~config:Config.lslp f in
            check_int (key ^ " scalar") 0 report.Pipeline.vectorized_regions;
            check_int (key ^ " no vectors") 0 (count_insts is_vector_op g))
          [ "loop.dot-serial"; "loop.dyn" ]);
    tc "vectorized loop kernels beat their scalar baseline" (fun () ->
        List.iter
          (fun key ->
            let reference = Lslp_kernels.Catalog.compile_key key in
            let f = compile_unrolled key in
            let _, g = Pipeline.run_cloned ~config:Config.lslp f in
            let o =
              Lslp_interp.Oracle.compare_runs ~reference ~candidate:g ()
            in
            check_bool
              (Fmt.str "%s speeds up (%d -> %d)" key
                 o.Lslp_interp.Oracle.reference_cycles
                 o.Lslp_interp.Oracle.candidate_cycles)
              true
              (o.Lslp_interp.Oracle.candidate_cycles
               < o.Lslp_interp.Oracle.reference_cycles))
          [ "loop.saxpy"; "loop.listing1"; "loop.stride2" ]);
    tc "remarks carry the region id" (fun () ->
        let f = compile_unrolled "loop.saxpy" in
        let config = Config.with_remarks true Config.lslp in
        let report, _ = Pipeline.run_cloned ~config f in
        check_bool "at least one remark" true
          (report.Pipeline.remarks <> []);
        List.iter
          (fun (r : Lslp_check.Remark.t) ->
            check_string "block id" "loop0.x4" r.Lslp_check.Remark.block)
          report.Pipeline.remarks);
    tc "mixed prologue + loop: every region reports its own block"
      (fun () ->
        let f =
          compile
            {|
kernel k(f64 Y[], f64 X[]) {
  Y[100] = X[100] + 1.0;
  Y[101] = X[101] + 1.0;
  for (i64 i = 0; i < 8; i += 1) {
    Y[i] = X[i] * 2.0;
  }
}
|}
        in
        ignore (unroll ~factor:4 f);
        let reference = Func.clone f in
        let report, g = Pipeline.run_cloned ~config:Config.lslp f in
        let ids =
          List.sort_uniq String.compare
            (List.map
               (fun (r : Pipeline.region) -> r.Pipeline.region_id)
               (List.filter
                  (fun (r : Pipeline.region) -> r.Pipeline.vectorized)
                  report.Pipeline.regions))
        in
        check_bool "entry and loop both vectorized" true
          (ids = [ "entry"; "loop0.x4" ]);
        assert_sound ~reference ~candidate:g ());
  ]

let suite =
  frontend_tests @ unroll_tests @ clone_tests @ verifier_tests
  @ pipeline_tests
