(* Tests for the IR verifier and printer. *)

open Lslp_ir
open Helpers

let base_func () =
  Builder.create ~name:"v"
    ~args:[ ("A", Instr.Array_arg Types.I64); ("F", Instr.Array_arg Types.F64);
            ("i", Instr.Int_arg); ("x", Instr.Float_arg) ]

let errors f = List.length (Verifier.check_func f)

let verifier_tests =
  [
    tc "accepts well-formed code" (fun () ->
        let b = base_func () in
        let v = Builder.load b ~base:"A" (Builder.idx 0) in
        let w = Builder.binop b Opcode.Add v (Builder.iconst 1) in
        Builder.store b ~base:"A" (Builder.idx 1) w;
        check_int "no errors" 0 (errors (Builder.func b)));
    tc "rejects use before def" (fun () ->
        let b = base_func () in
        let v = Builder.load b ~base:"A" (Builder.idx 0) in
        let w = Builder.binop b Opcode.Add v (Builder.iconst 1) in
        Builder.store b ~base:"A" (Builder.idx 1) w;
        let f = Builder.func b in
        Block.set_order (Func.entry f) (List.rev (Block.to_list (Func.entry f)));
        check_bool "errors" true (errors f > 0));
    tc "rejects operand type mismatch" (fun () ->
        let b = base_func () in
        let v = Builder.load b ~base:"F" (Builder.idx 0) in
        let f = Builder.func b in
        (* force an ill-typed instruction bypassing the builder *)
        let bad =
          Instr.create (Instr.Binop (Opcode.Add, v, Builder.iconst 1)) Types.i64
        in
        Block.append (Func.entry f) bad;
        check_bool "errors" true (errors f > 0));
    tc "rejects unknown array" (fun () ->
        let b = base_func () in
        let f = Builder.func b in
        let bad =
          Instr.create
            (Instr.Load
               { Instr.base = "Z"; elt = Types.I64; index = Affine.zero;
                 access_lanes = 1 })
            Types.i64
        in
        Block.append (Func.entry f) bad;
        check_bool "errors" true (errors f > 0));
    tc "rejects index symbol that is not an i64 argument" (fun () ->
        let b = base_func () in
        let f = Builder.func b in
        let bad =
          Instr.create
            (Instr.Load
               { Instr.base = "A"; elt = Types.I64; index = Affine.sym "x";
                 access_lanes = 1 })
            Types.i64
        in
        Block.append (Func.entry f) bad;
        check_bool "errors" true (errors f > 0));
    tc "rejects wrong element type for array" (fun () ->
        let b = base_func () in
        let f = Builder.func b in
        let bad =
          Instr.create
            (Instr.Load
               { Instr.base = "F"; elt = Types.I64; index = Affine.zero;
                 access_lanes = 1 })
            Types.i64
        in
        Block.append (Func.entry f) bad;
        check_bool "errors" true (errors f > 0));
    tc "rejects buildvec arity mismatch" (fun () ->
        let b = base_func () in
        let f = Builder.func b in
        let bad =
          Instr.create
            (Instr.Buildvec [ Builder.iconst 1 ])
            (Types.vec Types.I64 2)
        in
        Block.append (Func.entry f) bad;
        check_bool "errors" true (errors f > 0));
    tc "rejects extract lane out of range" (fun () ->
        let b = base_func () in
        let f = Builder.func b in
        let wide =
          Instr.create
            (Instr.Load
               { Instr.base = "A"; elt = Types.I64; index = Affine.zero;
                 access_lanes = 2 })
            (Types.vec Types.I64 2)
        in
        let bad = Instr.create (Instr.Extract (Instr.Ins wide, 5)) Types.i64 in
        Block.append (Func.entry f) wide;
        Block.append (Func.entry f) bad;
        check_bool "errors" true (errors f > 0));
    tc "rejects duplicate instruction in block" (fun () ->
        let b = base_func () in
        let v = Builder.load b ~base:"A" (Builder.idx 0) in
        let f = Builder.func b in
        (match v with
         | Instr.Ins i -> Block.append (Func.entry f) i
         | _ -> assert false);
        check_bool "errors" true (errors f > 0));
    tc "rejects store with non-void type" (fun () ->
        let b = base_func () in
        let f = Builder.func b in
        let bad =
          Instr.create
            (Instr.Store
               ({ Instr.base = "A"; elt = Types.I64; index = Affine.zero;
                  access_lanes = 1 },
                Builder.iconst 1))
            Types.i64
        in
        Block.append (Func.entry f) bad;
        check_bool "errors" true (errors f > 0));
    tc "verify_exn raises with all errors" (fun () ->
        let b = base_func () in
        let f = Builder.func b in
        let bad =
          Instr.create
            (Instr.Load
               { Instr.base = "Z"; elt = Types.I64; index = Affine.zero;
                 access_lanes = 1 })
            Types.i64
        in
        Block.append (Func.entry f) bad;
        check_bool "raises" true
          (try Verifier.verify_exn f; false with Verifier.Invalid _ -> true));
  ]

(* tiny substring helper *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.equal (String.sub haystack i nn) needle || go (i + 1))
  in
  nn = 0 || go 0

let printer_tests =
  [
    tc "scalar instruction forms" (fun () ->
        let f = compile {|
kernel p(i64 A[], i64 i) {
  A[i] = (A[i] << 2) + 1;
}
|} in
        let text = Printer.func_to_string f in
        check_bool "has load" true (contains text "load A[i]");
        check_bool "has shl" true (contains text "shl");
        check_bool "has store" true (contains text "store A[i]"));
    tc "vector forms print width" (fun () ->
        let f = kernel "motivation-loads" in
        let _, g = vectorize f in
        let text = Printer.func_to_string g in
        check_bool "wide type" true (contains text "<2 x i64>"));
    tc "labels are unique" (fun () ->
        let f = kernel "453.boy-surface" in
        let labels =
          List.map
            (fun (i : Instr.t) ->
              Printer.value_to_string (Instr.Ins i))
            (Block.to_list (Func.entry f))
        in
        check_int "unique" (List.length labels)
          (List.length (List.sort_uniq String.compare labels)));
    tc "constants print readably" (fun () ->
        check_string "int" "42"
          (Fmt.str "%a" Printer.pp_const_readable (Instr.Cint 42L));
        check_string "float" "2.5"
          (Fmt.str "%a" Printer.pp_const_readable (Instr.Cfloat 2.5)));
    tc "printer is total on ill-formed code" (fun () ->
        let bad =
          Instr.create (Instr.Buildvec []) (Types.vec Types.I64 2)
        in
        check_bool "prints" true
          (String.length (Printer.instr_to_string bad) > 0));
  ]

let suite = verifier_tests @ printer_tests
