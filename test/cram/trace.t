Golden decision traces.  Logical timestamps are the sink's own event
counter, so a trace is a pure function of (kernel, configuration) and can
be pinned byte for byte — instruction labels included, because each
`lslpc` process numbers instructions deterministically from zero.

The paper's Figure 4 example (multi-node formation over commutative
operands), as a decision log:

  $ lslpc trace --kernel motivation-multi --trace-format log 2>/dev/null
  0000 [entry] begin seed-collect
  0001 [entry]   seeds: 1
  A[i] x2
  0002 [entry] end seed-collect
  0003 [entry] try seed A[i] x2 (VL=2)
  0004 [entry] begin graph-build
  0005 [entry]   get_best mode=LOAD last=%ld0.21 {%t11.33, %t14.36,
  %ld16.38} -> %ld16.38
  0006 [entry]   get_best mode=OPCODE last=%t3.24 {%t11.33,
  %t14.36} -> %t14.36 L1:0/4 (cache 0h/10m)
  0007 [entry]   get_best mode=OPCODE last=%t7.28 {%t11.33} -> %t11.33
  0008 [entry]   slot modes: LOAD, OPCODE,
  OPCODE
  0009 [entry]   get_best mode=LOAD last=%ld1.22 {%ld12.34,
  %ld13.35} -> %ld12.34
  0010 [entry]   get_best mode=LOAD last=%ld2.23 {%ld13.35} -> %ld13.35
  0011 [entry]   slot modes: LOAD,
  LOAD
  0012 [entry]   get_best mode=LOAD last=%ld5.26 {%ld9.31,
  %ld10.32} -> %ld9.31
  0013 [entry]   get_best mode=LOAD last=%ld6.27 {%ld10.32} -> %ld10.32
  0014 [entry]   slot modes: LOAD,
  LOAD
  0015 [entry]   graph g0 for A[i] x2
  0016 [entry]   g0 node#1 group store [%v30, %v40]
  0017 [entry]   g0 node#2 multi and [%t8.29, %t17.39];
  [%t4.25, %t15.37]
  0018 [entry]   g0 node#3 group load [%ld0.21, %ld16.38]
  0019 [entry]   g0 node#4 multi add [%t3.24, %t14.36]
  0020 [entry]   g0 node#5 group load [%ld1.22, %ld12.34]
  0021 [entry]   g0 node#6 group load [%ld2.23, %ld13.35]
  0022 [entry]   g0 node#7 multi add [%t7.28, %t11.33]
  0023 [entry]   g0 node#8 group load [%ld5.26, %ld9.31]
  0024 [entry]   g0 node#9 group load [%ld6.27, %ld10.32]
  0025 [entry]   g0 edge #1 -> #2 (slot 0)
  0026 [entry]   g0 edge #2 -> #3 (slot 0)
  0027 [entry]   g0 edge #2 -> #4 (slot 1)
  0028 [entry]   g0 edge #2 -> #7 (slot 2)
  0029 [entry]   g0 edge #4 -> #5 (slot 0)
  0030 [entry]   g0 edge #4 -> #6 (slot 1)
  0031 [entry]   g0 edge #7 -> #8 (slot 0)
  0032 [entry]   g0 edge #7 -> #9 (slot 1)
  0033 [entry]   g0 dep #1 ~> #3
  0034 [entry]   g0 dep #1 ~> #4
  0035 [entry]   g0 dep #1 ~> #5
  0036 [entry]   g0 dep #1 ~> #6
  0037 [entry]   g0 dep #1 ~> #7
  0038 [entry]   g0 dep #1 ~> #8
  0039 [entry]   g0 dep #1 ~> #9
  0040 [entry]   g0 dep #2 ~> #5
  0041 [entry]   g0 dep #2 ~> #6
  0042 [entry]   g0 dep #2 ~> #8
  0043 [entry]   g0 dep #2 ~> #9
  0044 [entry] end graph-build
  0045 [entry] begin cost
  0046 [entry] end cost
  0047 [entry] cost A[i] x2: -10 vs threshold 0 over 9 node(s) -> accept
  0048 [entry] begin codegen
  0049 [entry]   emit x2 %vload.41 : <2 x i64> = load <2 x i64> A[i]
  0050 [entry]   emit x2 %vload.42 : <2 x i64> = load <2 x i64> B[i]
  0051 [entry]   emit x2 %vload.43 : <2 x i64> = load <2 x i64> C[i]
  0052 [entry]   emit x2 %v.44 : <2 x i64> = add %vload.42, %vload.43
  0053 [entry]   emit x2 %vload.45 : <2 x i64> = load <2 x i64> D[i]
  0054 [entry]   emit x2 %vload.46 : <2 x i64> = load <2 x i64> E[i]
  0055 [entry]   emit x2 %v.47 : <2 x i64> = add %vload.45, %vload.46
  0056 [entry]   emit x2 %v.48 : <2 x i64> = and %vload.41, %v.44
  0057 [entry]   emit x2 %v.49 : <2 x i64> = and %v.48, %v.47
  0058 [entry]   emit x2 store <2 x i64> A[i], %v.49
  0059 [entry] end codegen
  0060 [entry] outcome A[i] x2 (VL=2): vectorized (cost -10)
  0061 [entry] begin seed-collect
  0062 [entry]   seeds: 0
  0063 [entry] end seed-collect
  0064 [entry] begin reduction
  0065 [entry] end reduction
  0066 [entry] begin cse
  0067 [entry] end cse
  0068 [entry] begin dce
  0069 [entry] end dce

The motivating loads example (Figure 2: look-ahead breaks the tie between
isomorphic-looking operands by peeking at the loads underneath):

  $ lslpc trace --kernel motivation-loads --trace-format log 2>/dev/null
  0000 [entry] begin seed-collect
  0001 [entry]   seeds: 1
  A[i] x2
  0002 [entry] end seed-collect
  0003 [entry] try seed A[i] x2 (VL=2)
  0004 [entry] begin graph-build
  0005 [entry]   get_best mode=OPCODE last=%t1.14 {%t6.20,
  %t8.22} -> %t8.22 L1:1/3 (cache 0h/4m)
  0006 [entry]   get_best mode=OPCODE last=%t3.16 {%t6.20} -> %t6.20
  0007 [entry]   slot modes: OPCODE,
  OPCODE
  0008 [entry]   graph g0 for A[i] x2
  0009 [entry]   g0 node#1 group store [%v18, %v24]
  0010 [entry]   g0 node#2 multi and [%t4.17, %t9.23]
  0011 [entry]   g0 node#3 group shl [%t1.14, %t8.22]
  0012 [entry]   g0 node#4 gather [1, 4]
  0013 [entry]   g0 node#5 group load [%ld0.13, %ld7.21]
  0014 [entry]   g0 node#6 group shl [%t3.16, %t6.20]
  0015 [entry]   g0 node#7 gather [2, 3]
  0016 [entry]   g0 node#8 group load [%ld2.15, %ld5.19]
  0017 [entry]   g0 edge #1 -> #2 (slot 0)
  0018 [entry]   g0 edge #2 -> #3 (slot 0)
  0019 [entry]   g0 edge #2 -> #6 (slot 1)
  0020 [entry]   g0 edge #3 -> #5 (slot 0)
  0021 [entry]   g0 edge #3 -> #4 (slot 1)
  0022 [entry]   g0 edge #6 -> #8 (slot 0)
  0023 [entry]   g0 edge #6 -> #7 (slot 1)
  0024 [entry]   g0 dep #1 ~> #3
  0025 [entry]   g0 dep #1 ~> #5
  0026 [entry]   g0 dep #1 ~> #6
  0027 [entry]   g0 dep #1 ~> #8
  0028 [entry]   g0 dep #2 ~> #5
  0029 [entry]   g0 dep #2 ~> #8
  0030 [entry] end graph-build
  0031 [entry] begin cost
  0032 [entry] end cost
  0033 [entry] cost A[i] x2: -6 vs threshold 0 over 8 node(s) -> accept
  0034 [entry] begin codegen
  0035 [entry]   emit x2 %vload.25 : <2 x i64> = load <2 x i64> B[i]
  0036 [entry]   emit x2 %gath.26 : <2 x i64> = buildvec [1, 4]
  0037 [entry]   emit x2 %v.27 : <2 x i64> = shl %vload.25, %gath.26
  0038 [entry]   emit x2 %vload.28 : <2 x i64> = load <2 x i64> C[i]
  0039 [entry]   emit x2 %gath.29 : <2 x i64> = buildvec [2, 3]
  0040 [entry]   emit x2 %v.30 : <2 x i64> = shl %vload.28, %gath.29
  0041 [entry]   emit x2 %v.31 : <2 x i64> = and %v.27, %v.30
  0042 [entry]   emit x2 store <2 x i64> A[i], %v.31
  0043 [entry] end codegen
  0044 [entry] outcome A[i] x2 (VL=2): vectorized (cost -6)
  0045 [entry] begin seed-collect
  0046 [entry]   seeds: 0
  0047 [entry] end seed-collect
  0048 [entry] begin reduction
  0049 [entry] end reduction
  0050 [entry] begin cse
  0051 [entry] end cse
  0052 [entry] begin dce
  0053 [entry] end dce
