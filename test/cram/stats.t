Golden telemetry counters.  Counters are deterministic per (kernel,
configuration) and print on stdout; the wall-clock pass timings are not
and go to stderr, which these tests drop.

The paper's Figure 4 example: one region vectorized, look-ahead scoring
memoized (hits > 0), nothing degraded:

  $ lslpc analyze --kernel motivation-multi --stats 2>/dev/null
  LSLP: motivation_multi, 2 region(s) considered
  region [entry] A[i] x2 (VL=2):
    remark[outcome]: vectorized at VL=2: cost -10 beats threshold 0
  region [entry] reduce and x3:
    remark[outcome]: reduction not vectorized: 3 leaf/leaves is less than the vector width 4
  === telemetry: LSLP, motivation_multi ===
  block         seeds    tried    evals     hits   misses    nodes  emitted      vec degraded
  entry             1        1       10        0       10        9       10        1        0
  total             1        1       10        0       10        9       10        1        0
  legality: 0 error(s), 0 warning(s)

A deep-DAG kernel where the cache pays: 198 evaluations serve 297 hits —
without the cache the same reorder costs 2.5x the evaluations:

  $ lslpc analyze --kernel 453.vsumsqr --stats 2>/dev/null
  LSLP: vsumsqr, 2 region(s) considered
  region [entry] R[4*i] x4 (VL=4):
    remark[outcome]: vectorized at VL=4: cost -6 beats threshold 0
    remark[operand-mode-failed]: look-ahead reorder: 6 operand slot(s) ended in FAILED mode
    remark[gathered-columns]: operand column(s) gathered: loads do not access consecutive memory (x3)
  region [entry] reduce fadd x3:
    remark[outcome]: reduction not vectorized: 3 leaf/leaves is less than the vector width 4
  === telemetry: LSLP, vsumsqr ===
  block         seeds    tried    evals     hits   misses    nodes  emitted      vec degraded
  entry             1        1      198      297      198        8        9        1        0
  total             1        1      198      297      198        8        9        1        0
  legality: 0 error(s), 0 warning(s)

The same kernel with memoization off is the paper's Listing 7 as written:
more evaluations, zero cache traffic, byte-identical everything else:

  $ lslpc analyze --kernel 453.boy-surface --stats 2>/dev/null
  LSLP: boy_surface, 2 region(s) considered
  region [entry] P[4*i] x4 (VL=4):
    remark[outcome]: vectorized at VL=4: cost -33 beats threshold 0
  region [entry] reduce fadd x4 (VL=4):
    remark[outcome]: kept scalar: cost +4 is not below threshold 0
  === telemetry: LSLP, boy_surface ===
  block         seeds    tried    evals     hits   misses    nodes  emitted      vec degraded
  entry             1        1       54       81       54       10       11        1        0
  total             1        1       54       81       54       10       11        1        0
  legality: 0 error(s), 0 warning(s)

  $ lslpc analyze --kernel 453.boy-surface --stats --no-score-cache 2>/dev/null
  LSLP: boy_surface, 2 region(s) considered
  region [entry] P[4*i] x4 (VL=4):
    remark[outcome]: vectorized at VL=4: cost -33 beats threshold 0
  region [entry] reduce fadd x4 (VL=4):
    remark[outcome]: kept scalar: cost +4 is not below threshold 0
  === telemetry: LSLP, boy_surface ===
  block         seeds    tried    evals     hits   misses    nodes  emitted      vec degraded
  entry             1        1      135        0        0       10       11        1        0
  total             1        1      135        0        0       10       11        1        0
  legality: 0 error(s), 0 warning(s)
