The analyze subcommand: one remark per region the vectorizer considered,
plus the legality validator's verdict on the transformed function.

A region LSLP vectorizes carries its cost delta against the threshold (the
paper's Figure 4 example, cost -10):

  $ lslpc analyze --kernel motivation-multi --config lslp
  LSLP: motivation_multi, 2 region(s) considered
  region [entry] A[i] x2 (VL=2):
    remark[outcome]: vectorized at VL=2: cost -10 beats threshold 0
  region [entry] reduce and x3:
    remark[outcome]: reduction not vectorized: 3 leaf/leaves is less than the vector width 4
  legality: 0 error(s), 0 warning(s)

Vanilla SLP vectorizes the same region less profitably, and the remarks say
why: the operand columns it could not reorder were gathered:

  $ lslpc analyze --kernel motivation-multi --config slp
  SLP: motivation_multi, 2 region(s) considered
  region [entry] A[i] x2 (VL=2):
    remark[outcome]: vectorized at VL=2: cost -2 beats threshold 0
    remark[gathered-columns]: operand column(s) gathered: members have different opcodes (x2)
  region [entry] reduce and x3:
    remark[outcome]: reduction not vectorized: 3 leaf/leaves is less than the vector width 4
  legality: 0 error(s), 0 warning(s)

A seed whose lanes depend on one another can never be bundled; the remark
names the schedulability reason:

  $ cat > dep.k <<'EOF'
  > kernel dep(i64 A[], i64 B[], i64 i) {
  >   A[i] = B[i] << 1;
  >   A[i+1] = A[i] << 1;
  > }
  > EOF
  $ lslpc analyze dep.k --config lslp
  LSLP: dep, 1 region(s) considered
  region [entry] A[i] x2 (VL=2):
    remark[outcome]: kept scalar: cost +2 is not below threshold 0
    remark[seed-rejected]: seed bundle rejected: members depend on one another
  legality: 0 error(s), 0 warning(s)

When look-ahead reordering cannot find a matching operand for a slot, the
slot's mode degrades to FAILED and the remark counts those slots:

  $ cat > failedmode.k <<'EOF'
  > kernel failedmode(f64 A[], f64 B[], f64 C[], i64 i) {
  >   A[i] = (B[i] * C[i]) + (B[i+4] / C[i+4]);
  >   A[i+1] = (B[i+1] - C[i+1]) + (B[i+5] - C[i+5]);
  > }
  > EOF
  $ lslpc analyze failedmode.k --config lslp
  LSLP: failedmode, 1 region(s) considered
  region [entry] A[i] x2 (VL=2):
    remark[outcome]: kept scalar: cost +2 is not below threshold 0
    remark[operand-mode-failed]: look-ahead reorder: 2 operand slot(s) ended in FAILED mode
    remark[gathered-columns]: operand column(s) gathered: members have different opcodes (x2)
  legality: 0 error(s), 0 warning(s)

The same report as machine-readable JSON (no external JSON dependency):

  $ lslpc analyze --kernel motivation-multi --config lslp --json
  {"config":"LSLP","function":"motivation_multi","regions":[{"region":"A[i] x2","block":"entry","lanes":2,"cost":-10,"threshold":0,"outcome":"vectorized","remarks":[{"rule":"outcome","message":"vectorized at VL=2: cost -10 beats threshold 0"}]},{"region":"reduce and x3","block":"entry","lanes":0,"cost":null,"threshold":0,"outcome":"reduction-unmatched","remarks":[{"rule":"outcome","message":"reduction not vectorized: 3 leaf/leaves is less than the vector width 4"}]}],"diagnostics":[]}

  $ lslpc analyze dep.k --config lslp --json
  {"config":"LSLP","function":"dep","regions":[{"region":"A[i] x2","block":"entry","lanes":2,"cost":2,"threshold":0,"outcome":"unprofitable","remarks":[{"rule":"outcome","message":"kept scalar: cost +2 is not below threshold 0"},{"rule":"seed-rejected","message":"seed bundle rejected: members depend on one another"}]}],"diagnostics":[]}

compile and run accept --verify-output: the legality validator re-checks
the transformed function against the pre-pass dependence graph:

  $ lslpc compile --kernel motivation-loads --config lslp --verify-output -q
  legality: 0 error(s), 0 warning(s)

  $ lslpc run ../../examples/kernels/saxpy2.k --config lslp --verify-output | tail -5
  legality: 0 error(s), 0 warning(s)
  scalar cycles:     12
  vectorized cycles: 6
  speedup:           2.000x
  equivalence:       OK
