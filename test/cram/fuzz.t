Fail-soft operation end to end.

Arming fault injection at every boundary (rate 1.0 never consults the
dice, so this output is identical on every OCaml version) degrades every
region; the IR rolls back to scalar and no exception escapes:

  $ lslpc compile --kernel motivation-multi --inject all:1.0:7
  LSLP: 2 region(s), 0 vectorized, 2 degraded, total cost +0
    [entry] A[i] x2 (VL=2): cost +0 [degraded: graph-build: injected fault]
    [entry] (cleanup) (VL=0): cost +0 [degraded: cse: injected fault]
  


A rolled-back region still simulates identically to the scalar reference
(no speedup, but no miscompile either):

  $ lslpc run --kernel motivation-loads --config lslp --inject codegen
  LSLP: 1 region(s), 0 vectorized, 1 degraded, total cost +0
    [entry] A[i] x2 (VL=2): cost +0 [degraded: codegen: injected fault]
  
  scalar cycles:     12
  vectorized cycles: 12
  speedup:           1.000x
  equivalence:       OK


The corrupt point damages the vectorized block instead of raising; the
in-transaction verifier catches it and triggers the same rollback:

  $ lslpc run --kernel motivation-loads --config lslp --inject corrupt | tail -1
  equivalence:       OK

Degraded regions explain themselves through the remarks engine:

  $ lslpc analyze --kernel motivation-loads --inject graph-build
  LSLP: motivation_loads, 1 region(s) considered
  region [entry] A[i] x2 (VL=2):
    remark[outcome]: degraded: graph-build failed (injected fault); region rolled back to scalar
  legality: 0 error(s), 0 warning(s)

Bad injection specs are rejected up front:

  $ lslpc compile --kernel motivation-loads --inject bogus 2>&1 | head -1
  lslpc: option '--inject': unknown injection point "bogus"

The differential fuzzer: random well-typed kernels through the pipeline
under random configurations, checked against the scalar oracle.  The
stdout summary is stable (the RNG-dependent counters go to stderr):

  $ lslpc fuzz --cases 25 --seed 42 2>/dev/null
  fuzz: 25 case(s): 0 failure(s)

Forcing faults into every case must not break the property either — every
fault lands in a transaction and rolls back:

  $ lslpc fuzz --cases 10 --seed 1 --inject all:1.0:3 2>/dev/null
  fuzz: 10 case(s): 0 failure(s)
