lslp-lint parses OCaml sources with the compiler's own parser and
applies the R1-R4 domain-safety rules.  The fixture files are created
inline so text and JSON renderings are byte-pinned end to end.

R1: a module-level let creating mutable state is shared by every domain:

  $ cat > global_state.ml <<'EOF'
  > let hits = ref 0
  > let bump () = incr hits
  > EOF
  $ lslp-lint global_state.ml
  global_state.ml:1:11: error[R1:global-mutable-state]: module-level value `hits` creates a ref cell shared by every domain; make it per-run state, or use Atomic/Id_gen and waive it
  lint: 1 file(s), 1 finding(s): 1 unwaived, 0 waived
  [1]

R2/R3/R4 are expression patterns, reported in location order:

  $ cat > racy.ml <<'EOF'
  > let roll () = Random.int 6
  > let f () = failwith "nope"
  > let h () = raise Not_found
  > let now () = Unix.gettimeofday ()
  > EOF
  $ lslp-lint racy.ml
  racy.ml:1:14: error[R2:ambient-random]: Random.int uses the ambient generator; thread an explicit Random.State.t instead
  racy.ml:2:11: error[R3:raise-primitives]: failwith raises untyped Failure; raise a typed error instead
  racy.ml:3:17: error[R3:raise-primitives]: bare raise of predefined Not_found; raise a typed error instead
  racy.ml:4:13: error[R4:wall-clock]: Unix.gettimeofday reads the wall clock; only waived telemetry/trace modules may be nondeterministic
  lint: 1 file(s), 4 finding(s): 4 unwaived, 0 waived
  [1]

The JSON rendering carries the same findings for tooling:

  $ lslp-lint --json global_state.ml
  {"files":1,"parse_errors":[],"findings":[{"rule":"R1","slug":"global-mutable-state","file":"global_state.ml","line":1,"col":11,"ident":"hits","message":"module-level value `hits` creates a ref cell shared by every domain; make it per-run state, or use Atomic/Id_gen and waive it","waived":false}],"stale_waivers":[],"ok":false}
  [1]

A waiver entry keyed by (rule, file, ident) silences the finding with a
committed justification:

  $ cat > lint.waivers <<'EOF'
  > R1 global_state.ml hits -- counter is test-only
  > EOF
  $ lslp-lint --check-waivers global_state.ml
  lint: 1 file(s), 1 finding(s): 0 unwaived, 1 waived

--check-waivers fails on entries that no longer match anything, so a
fixed site must drop its waiver in the same commit:

  $ cat >> lint.waivers <<'EOF'
  > R2 global_state.ml Random.int -- no such call
  > EOF
  $ lslp-lint --check-waivers global_state.ml
  stale waiver (matched no finding): R2 global_state.ml Random.int -- no such call
  lint: 1 file(s), 1 finding(s): 0 unwaived, 1 waived, 1 stale waiver(s)
  [1]

--rule restricts the registry (stale entries for other rules are then
out of scope):

  $ lslp-lint --rule R2 global_state.ml
  lint: 1 file(s), 0 finding(s): 0 unwaived, 0 waived

A file the compiler cannot parse is a lint failure, not a crash:

  $ cat > bad.ml <<'EOF'
  > let = 3
  > EOF
  $ lslp-lint bad.ml
  bad.ml: parse error: File "bad.ml", line 1, characters 4-5: Error: Syntax error
  lint: 1 file(s), 0 finding(s): 0 unwaived, 0 waived
  [1]

The registry is self-describing:

  $ lslp-lint --rules
  R1 global-mutable-state   module-level let creating mutable state (ref, Hashtbl.create, ...) shared across domains
  R2 ambient-random         ambient Random.* call (incl. self_init) instead of an explicit Random.State.t
  R3 raise-primitives       failwith / invalid_arg / bare raise of a predefined exception instead of a typed error
  R4 wall-clock             wall-clock read (Unix.gettimeofday, Unix.time, Sys.time) outside the waived telemetry/trace modules
  R5 boxed-table-hot-path   Hashtbl.create / List.assoc* in a hot-path module (lib/core, lib/ir); index through Arena, Int_table or Key_table instead
