Branching kernels through if-conversion: the `if`/`else` bodies become
masked stores under an i1 predicate, complementary then/else stores form
two independent seed streams (same addresses, different occurrence), and
both vectorize.  cond.abs is the two-stream shape:

  $ lslpc analyze --kernel cond.abs
  LSLP: cond_abs, 2 region(s) considered
  region [loop0.x4] y[i] x4 (VL=4):
    remark[outcome]: vectorized at VL=4: cost -17 beats threshold 0
    remark[gathered-columns]: operand column(s) gathered: not all members are instructions
  region [loop0.x4] y[i] x4 (VL=4):
    remark[outcome]: vectorized at VL=4: cost -11 beats threshold 0
    remark[gathered-columns]: operand column(s) gathered: not all members are instructions; instruction shape is not vectorizable
  legality: 0 error(s), 0 warning(s)

A guarded read-modify-write with no else branch: one region, masked
loads of both inputs under the guard, one masked store back:

  $ lslpc analyze --kernel cond.saxpy-guard
  LSLP: cond_saxpy_guard, 1 region(s) considered
  region [loop0.x4] y[i] x4 (VL=4):
    remark[outcome]: vectorized at VL=4: cost -29 beats threshold 0
    remark[gathered-columns]: operand column(s) gathered: not all members are instructions (x3)
  legality: 0 error(s), 0 warning(s)

The simulated-cycle run proves the masked code is both faster and
equivalent to the scalar branchy reference:

  $ lslpc run --kernel cond.abs 2>/dev/null
  LSLP: 2 region(s), 2 vectorized, total cost -28
    [loop0.x4] y[i] x4 (VL=4): cost -17 [vectorized]
    [loop0.x4] y[i] x4 (VL=4): cost -11 [vectorized]
  
  scalar cycles:     3072
  vectorized cycles: 1536
  speedup:           2.000x
  equivalence:       OK

  $ lslpc run --kernel cond.saxpy-guard 2>/dev/null
  LSLP: 1 region(s), 1 vectorized, total cost -29
    [loop0.x4] y[i] x4 (VL=4): cost -29 [vectorized]
  
  scalar cycles:     640
  vectorized cycles: 176
  speedup:           3.636x
  equivalence:       OK

The decision log for the guarded saxpy: the cmp column vectorizes once
(%vcmp) and feeds the masked loads AND the masked store — no predicate
is ever rematerialized:

  $ lslpc trace --kernel cond.saxpy-guard --trace-format log 2>/dev/null
  0000 [loop0.x4] begin seed-collect
  0001 [loop0.x4]   seeds: 1
  y[i] x4
  0002 [loop0.x4] end seed-collect
  0003 [loop0.x4] try seed y[i] x4 (VL=4)
  0004 [loop0.x4] begin graph-build
  0005 [loop0.x4]   get_best mode=LOAD last=%mld2.38 {%mld2.45,
  %t4.47} -> %mld2.45
  0006 [loop0.x4]   get_best mode=OPCODE last=%t4.40 {%t4.47} -> %t4.47
  0007 [loop0.x4]   get_best mode=LOAD last=%mld2.45 {%mld2.52,
  %t4.54} -> %mld2.52
  0008 [loop0.x4]   get_best mode=OPCODE last=%t4.47 {%t4.54} -> %t4.54
  0009 [loop0.x4]   get_best mode=LOAD last=%mld2.52 {%mld2.59,
  %t4.61} -> %mld2.59
  0010 [loop0.x4]   get_best mode=OPCODE last=%t4.54 {%t4.61} -> %t4.61
  0011 [loop0.x4]   slot modes: LOAD,
  OPCODE
  0012 [loop0.x4]   get_best mode=CONST last=a {a,
  %mld3.46} -> a
  0013 [loop0.x4]   get_best mode=LOAD last=%mld3.39 {%mld3.46} -> %mld3.46
  0014 [loop0.x4]   get_best mode=SPLAT last=a {a,
  %mld3.53} -> a
  0015 [loop0.x4]   get_best mode=LOAD last=%mld3.46 {%mld3.53} -> %mld3.53
  0016 [loop0.x4]   get_best mode=SPLAT last=a {a,
  %mld3.60} -> a
  0017 [loop0.x4]   get_best mode=LOAD last=%mld3.53 {%mld3.60} -> %mld3.60
  0018 [loop0.x4]   slot modes: SPLAT,
  LOAD
  0019 [loop0.x4]   graph g0 for y[i] x4
  0020 [loop0.x4]   g0 node#1 group masked.store [%v42, %v49, %v56, %v63]
  0021 [loop0.x4]   g0 node#2 group cmp.gt [%m1.37, %m1.44, %m1.51, %m1.58]
  0022 [loop0.x4]   g0 node#3 gather [0, 0, 0, 0]
  0023 [loop0.x4]   g0 node#4 group load [%ld0.36, %ld0.43, %ld0.50, %ld0.57]
  0024 [loop0.x4]   g0 node#5 multi fadd [%t5.41, %t5.48, %t5.55, %t5.62]
  0025 [loop0.x4]   g0 node#6 group masked.load [%mld2.38, %mld2.45, %mld2.52,
                                                 %mld2.59]
  0026 [loop0.x4]   g0 node#7 gather [0, 0, 0, 0]
  0027 [loop0.x4]   g0 node#8 multi fmul [%t4.40, %t4.47, %t4.54, %t4.61]
  0028 [loop0.x4]   g0 node#9 gather [a, a, a, a]
  0029 [loop0.x4]   g0 node#10 group masked.load [%mld3.39, %mld3.46, %mld3.53,
                                                  %mld3.60]
  0030 [loop0.x4]   g0 edge #1 -> #5 (slot 0)
  0031 [loop0.x4]   g0 edge #1 -> #2 (slot 1)
  0032 [loop0.x4]   g0 edge #2 -> #4 (slot 0)
  0033 [loop0.x4]   g0 edge #2 -> #3 (slot 1)
  0034 [loop0.x4]   g0 edge #5 -> #6 (slot 0)
  0035 [loop0.x4]   g0 edge #5 -> #8 (slot 1)
  0036 [loop0.x4]   g0 edge #6 -> #2 (slot 0)
  0037 [loop0.x4]   g0 edge #6 -> #7 (slot 1)
  0038 [loop0.x4]   g0 edge #8 -> #9 (slot 0)
  0039 [loop0.x4]   g0 edge #8 -> #10 (slot 1)
  0040 [loop0.x4]   g0 edge #10 -> #2 (slot 0)
  0041 [loop0.x4]   g0 edge #10 -> #7 (slot 1)
  0042 [loop0.x4]   g0 dep #1 ~> #4
  0043 [loop0.x4]   g0 dep #1 ~> #6
  0044 [loop0.x4]   g0 dep #1 ~> #8
  0045 [loop0.x4]   g0 dep #1 ~> #10
  0046 [loop0.x4]   g0 dep #5 ~> #2
  0047 [loop0.x4]   g0 dep #5 ~> #4
  0048 [loop0.x4]   g0 dep #5 ~> #10
  0049 [loop0.x4]   g0 dep #6 ~> #4
  0050 [loop0.x4]   g0 dep #8 ~> #2
  0051 [loop0.x4]   g0 dep #8 ~> #4
  0052 [loop0.x4]   g0 dep #10 ~> #4
  0053 [loop0.x4] end graph-build
  0054 [loop0.x4] begin cost
  0055 [loop0.x4] end cost
  0056 [loop0.x4] cost y[i] x4: -29 vs threshold 0 over 10 node(s) -> accept
  0057 [loop0.x4] begin codegen
  0058 [loop0.x4]   emit x4 %vload.64 : <4 x i64> = load <4 x i64> g[i]
  0059 [loop0.x4]   emit x4 %gath.65 : <4 x i64> = buildvec [0, 0, 0, 0]
  0060 [loop0.x4]   emit x4 %vcmp.66 : <4 x i1> = cmp.gt %vload.64, %gath.65
  0061 [loop0.x4]   emit x4 %gath.67 : <4 x f64> = buildvec [0, 0, 0, 0]
  0062 [loop0.x4]   emit x4 %vmload.68 : <4 x f64> = masked.load <4 x f64> y[i], %vcmp.66, %gath.67
  0063 [loop0.x4]   emit x4 %vmload.69 : <4 x f64> = masked.load <4 x f64> x[i], %vcmp.66, %gath.67
  0064 [loop0.x4]   emit x4 %splat.70 : <4 x f64> = splat a
  0065 [loop0.x4]   emit x4 %v.71 : <4 x f64> = fmul %splat.70, %vmload.69
  0066 [loop0.x4]   emit x4 %v.72 : <4 x f64> = fadd %vmload.68, %v.71
  0067 [loop0.x4]   emit x4 masked.store <4 x f64> y[i], %v.72, %vcmp.66
  0068 [loop0.x4] end codegen
  0069 [loop0.x4] outcome y[i] x4 (VL=4): vectorized (cost -29)
  0070 [loop0.x4] begin seed-collect
  0071 [loop0.x4]   seeds: 0
  0072 [loop0.x4] end seed-collect
  0073 [loop0.x4] begin reduction
  0074 [loop0.x4] end reduction
  0075 [loop0.x4] begin cse
  0076 [loop0.x4] end cse
  0077 [loop0.x4] begin dce
  0078 [loop0.x4] end dce
