Golden metrics exposition.  On a 1-domain pool the whole dump is a pure
function of (catalog, config), so these pins are tolerance-free: any
drift in scheduling, caching or pass instrumentation shows up as a
counter diff.  Bucket lines are elided here only to keep the golden
readable — `make metrics-check` pins the complete dump byte for byte
against bench_results/METRICS_baseline.prom.

Two rounds over the catalog: round 2 must be pure cache hits, and the
pipeline counters must count only the 28 real compiles:

  $ lslpc batch --jobs 1 --repeat 2 --metrics-out - 2>/dev/null | grep -v '_bucket\|^#'
  batch: 2 round(s) x 28 kernel(s) on 1 domain(s): 56 ok (28 from cache), 0 degraded
  lslp_jobs_submitted_total 56
  lslp_jobs_completed_total 56
  lslp_jobs_retried_total 0
  lslp_jobs_timed_out_total 0
  lslp_jobs_shed_total 0
  lslp_jobs_failed_total 0
  lslp_workers_respawned_total 0
  lslp_cache_hits_total 28
  lslp_cache_misses_total 28
  lslp_cache_verified_total 28
  lslp_cache_evicted_total 0
  lslp_cache_inserts_total 28
  lslp_queue_depth 0
  lslp_job_latency_ticks_sum 56
  lslp_job_latency_ticks_count 56
  lslp_job_attempts_sum 56
  lslp_job_attempts_count 56
  lslp_queue_depth_dispatch_sum 756
  lslp_queue_depth_dispatch_count 56
  lslp_queue_depth_complete_sum 756
  lslp_queue_depth_complete_count 56
  lslp_pipeline_seeds_total 37
  lslp_pipeline_tried_total 30
  lslp_pipeline_evals_total 1201
  lslp_pipeline_hits_total 1160
  lslp_pipeline_misses_total 1160
  lslp_pipeline_nodes_total 247
  lslp_pipeline_emitted_total 244
  lslp_pipeline_vec_total 29
  lslp_pipeline_degraded_total 0
  lslp_job_pass_steps_sum 230
  lslp_job_pass_steps_count 28
  lslp_pass_steps_sum{pass="seed-collect"} 58
  lslp_pass_steps_count{pass="seed-collect"} 28
  lslp_pass_steps_sum{pass="graph-build"} 30
  lslp_pass_steps_count{pass="graph-build"} 25
  lslp_pass_steps_sum{pass="cost"} 30
  lslp_pass_steps_count{pass="cost"} 25
  lslp_pass_steps_sum{pass="codegen"} 28
  lslp_pass_steps_count{pass="codegen"} 23
  lslp_pass_steps_sum{pass="reduction"} 28
  lslp_pass_steps_count{pass="reduction"} 28
  lslp_pass_steps_sum{pass="cse"} 28
  lslp_pass_steps_count{pass="cse"} 28
  lslp_pass_steps_sum{pass="dce"} 28
  lslp_pass_steps_count{pass="dce"} 28

The flight recorder tells the same story per job — one kernel's whole
lifecycle, with the attempt seed pinned (the seed is what replays that
attempt's fault schedule) and cache events recorded off the pool clock
(tick -1) under the job's content key:

  $ lslpc batch --jobs 1 --flight-out - 2>/dev/null | grep '"453.boy-surface"'
  {"seq":0,"tick":0,"event":"enqueued","job":"453.boy-surface","attempt":-1,"seed":0,"detail":""}
  {"seq":28,"tick":1,"event":"dispatched","job":"453.boy-surface","attempt":0,"seed":0,"detail":""}
  {"seq":29,"tick":-1,"event":"cache-miss","job":"453.boy-surface","attempt":-1,"seed":0,"detail":"4800ccffa1ba8ea8cfd0d144ece756ca"}
  {"seq":30,"tick":-1,"event":"cache-insert","job":"453.boy-surface","attempt":-1,"seed":0,"detail":"4800ccffa1ba8ea8cfd0d144ece756ca"}
  {"seq":31,"tick":2,"event":"completed","job":"453.boy-surface","attempt":0,"seed":0,"detail":"latency=1"}

The dump parses and reconciles through lslpc's own reader:

  $ lslpc batch --jobs 1 --metrics-out m.prom 2>/dev/null >/dev/null
  $ lslpc metrics-verify m.prom --expect-degradations 0
  metrics-verify: 176 sample(s) parsed
  metrics-verify: degradations 0 (as expected)
