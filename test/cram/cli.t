The lslpc driver end to end.  Kernel listing:

  $ lslpc kernels | head -4
  453.boy-surface            453.povray   fnintern.cpp:355
  453.intersect-quadratic    453.povray   poly.cpp:813
  453.calc-z3                453.povray   quatern.cpp:433
  453.vsumsqr                453.povray   vector.h:362

Compiling a catalog kernel under LSLP reports the vectorized region and its
cost (the paper's Figure 4 example: cost -10):

  $ lslpc compile --kernel motivation-multi --config lslp
  LSLP: 1 region(s), 1 vectorized, total cost -10
    [entry] A[i] x2 (VL=2): cost -10 [vectorized]
  

Vanilla SLP only gets the partial graph (the paper: cost -2):

  $ lslpc compile --kernel motivation-multi --config slp
  SLP: 1 region(s), 1 vectorized, total cost -2
    [entry] A[i] x2 (VL=2): cost -2 [vectorized]
  

Running simulates scalar vs vectorized and checks equivalence:

  $ lslpc run --kernel motivation-loads --config lslp | tail -4
  scalar cycles:     12
  vectorized cycles: 6
  speedup:           2.000x
  equivalence:       OK

Configuration knobs parse (look-ahead depth, multi-node size):

  $ lslpc compile --kernel motivation-loads --config lslp-la:0 --quiet
  $ lslpc compile --kernel motivation-loads --config lslp-multi:2 --quiet
  $ lslpc compile --kernel motivation-loads --config bogus 2>&1 | head -1
  lslpc: option '--config': unknown configuration bogus

Kernel files from disk work, including reductions:

  $ lslpc run ../../examples/kernels/norm4.k | tail -2
  speedup:           2.000x
  equivalence:       OK

Parse errors are reported with positions:

  $ echo 'kernel broken(f64 A[], i64 i) { A[i] = ; }' > broken.k
  $ lslpc compile broken.k
  error at 1:40: expected an expression, found `;`
  [1]

The show subcommand prints source and IR:

  $ lslpc show motivation-loads | head -5
  // motivation-loads (Section 3.1, Figure 2)
  kernel motivation_loads(i64 A[], i64 B[], i64 C[], i64 i) {
    A[i+0] = (B[i+0] << 1) & (C[i+0] << 2);
    A[i+1] = (C[i+1] << 3) & (B[i+1] << 4);
  }
