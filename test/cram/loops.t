Loop kernels vectorize through the region-formation (unroll) layer: the
counted loop is unrolled by the vector factor and the remarks name the
unrolled block as the region.

  $ lslpc analyze --kernel loop.saxpy --config lslp
  LSLP: loop_saxpy, 1 region(s) considered
  region [loop0.x4] Y[i] x4 (VL=4):
    remark[outcome]: vectorized at VL=4: cost -14 beats threshold 0
    remark[gathered-columns]: operand column(s) gathered: not all members are instructions
  legality: 0 error(s), 0 warning(s)

The JSON report carries the block label of every region so tooling can key
remarks to the control skeleton:

  $ lslpc analyze --kernel loop.saxpy --config lslp --json
  {"config":"LSLP","function":"loop_saxpy","regions":[{"region":"Y[i] x4","block":"loop0.x4","lanes":4,"cost":-14,"threshold":0,"outcome":"vectorized","remarks":[{"rule":"outcome","message":"vectorized at VL=4: cost -14 beats threshold 0"},{"rule":"gathered-columns","message":"operand column(s) gathered: not all members are instructions"}]}],"diagnostics":[]}

A trip count below the unroll factor is fully unrolled instead (one
straight-line region, no loop left):

  $ cat > tiny.k <<'EOF'
  > kernel tiny(f64 A[], f64 B[]) {
  >   for (i64 i = 0; i < 3; i += 1) {
  >     A[i] = B[i] + B[i];
  >   }
  > }
  > EOF
  $ lslpc analyze tiny.k --config lslp
  LSLP: tiny, 1 region(s) considered
  region [loop0.full] A[0] x2 (VL=2):
    remark[outcome]: vectorized at VL=2: cost -3 beats threshold 0
  legality: 0 error(s), 0 warning(s)

With unrolling disabled the loop body is a 1-wide region and nothing
vectorizes:

  $ lslpc analyze --kernel loop.saxpy --config lslp --unroll 0
  LSLP: loop_saxpy, 0 region(s) considered
  legality: 0 error(s), 0 warning(s)

A symbolic trip count is left alone — the region keeps its loop form:

  $ lslpc analyze --kernel loop.dyn --config lslp
  LSLP: loop_dyn, 0 region(s) considered
  legality: 0 error(s), 0 warning(s)
