(* Unit + property tests for affine index expressions. *)

open Lslp_ir
open Helpers

let unit_tests =
  [
    tc "const is constant" (fun () ->
        check_bool "is_const" true (Affine.is_const (Affine.const 5));
        check (Alcotest.option Alcotest.int) "to_const" (Some 5)
          (Affine.to_const (Affine.const 5)));
    tc "sym is not constant" (fun () ->
        check_bool "is_const" false (Affine.is_const (Affine.sym "i")));
    tc "zero coefficient collapses to zero" (fun () ->
        check_bool "equal" true (Affine.equal (Affine.sym ~coeff:0 "i") Affine.zero));
    tc "add combines coefficients" (fun () ->
        let a = Affine.add (Affine.sym ~coeff:2 "i") (Affine.sym ~coeff:3 "i") in
        check_bool "2i+3i = 5i" true (Affine.equal a (Affine.sym ~coeff:5 "i")));
    tc "add cancels to zero" (fun () ->
        let a = Affine.add (Affine.sym "i") (Affine.sym ~coeff:(-1) "i") in
        check_bool "i - i = 0" true (Affine.equal a Affine.zero));
    tc "sub of equal forms is zero" (fun () ->
        let a = Affine.add_const 3 (Affine.sym ~coeff:2 "j") in
        check_bool "a - a = 0" true (Affine.equal (Affine.sub a a) Affine.zero));
    tc "scale distributes" (fun () ->
        let a = Affine.add_const 1 (Affine.sym "i") in
        let b = Affine.scale 4 a in
        check (Alcotest.option Alcotest.int) "diff" (Some 0)
          (Affine.diff_const b
             (Affine.add_const 4 (Affine.sym ~coeff:4 "i"))));
    tc "mul by constant works" (fun () ->
        match Affine.mul (Affine.const 3) (Affine.sym "i") with
        | Some a -> check_bool "3*i" true (Affine.equal a (Affine.sym ~coeff:3 "i"))
        | None -> Alcotest.fail "expected Some");
    tc "mul of two symbols is undefined" (fun () ->
        check_bool "non-affine" true
          (Affine.mul (Affine.sym "i") (Affine.sym "j") = None));
    tc "diff_const sees constant offsets" (fun () ->
        let a = Affine.add_const 2 (Affine.sym "i") in
        let b = Affine.add_const 5 (Affine.sym "i") in
        check (Alcotest.option Alcotest.int) "b - a" (Some 3)
          (Affine.diff_const b a));
    tc "diff_const rejects different symbols" (fun () ->
        check (Alcotest.option Alcotest.int) "i vs j" None
          (Affine.diff_const (Affine.sym "i") (Affine.sym "j")));
    tc "diff_const rejects different coefficients" (fun () ->
        check (Alcotest.option Alcotest.int) "2i vs i" None
          (Affine.diff_const (Affine.sym ~coeff:2 "i") (Affine.sym "i")));
    tc "eval" (fun () ->
        let a =
          Affine.add (Affine.sym ~coeff:3 "i")
            (Affine.add_const 7 (Affine.sym ~coeff:(-1) "j"))
        in
        let env = function "i" -> 10 | "j" -> 4 | _ -> 0 in
        check_int "3*10 - 4 + 7" 33 (Affine.eval ~env a));
    tc "symbols sorted and unique" (fun () ->
        let a = Affine.add (Affine.sym "z") (Affine.add (Affine.sym "a") (Affine.sym "z")) in
        check (Alcotest.list Alcotest.string) "syms" [ "a"; "z" ]
          (Affine.symbols a));
    tc "printing" (fun () ->
        check_string "const" "7" (Affine.to_string (Affine.const 7));
        check_string "sym" "i" (Affine.to_string (Affine.sym "i"));
        check_string "sum" "2*i + 3"
          (Affine.to_string (Affine.add_const 3 (Affine.sym ~coeff:2 "i")));
        check_string "neg" "-i - 1"
          (Affine.to_string (Affine.add_const (-1) (Affine.sym ~coeff:(-1) "i"))));
    tc "compare is a total order consistent with equal" (fun () ->
        let a = Affine.add_const 1 (Affine.sym "i") in
        let b = Affine.add_const 1 (Affine.sym "i") in
        check_int "equal forms compare 0" 0 (Affine.compare a b));
  ]

(* Property tests: the affine algebra is a module over Z. *)
let gen_affine =
  let open QCheck2.Gen in
  let sym_name = oneofl [ "i"; "j"; "k" ] in
  let term = pair sym_name (int_range (-5) 5) in
  let* terms = list_size (int_range 0 3) term in
  let* c = int_range (-100) 100 in
  return
    (List.fold_left
       (fun acc (s, coeff) -> Affine.add acc (Affine.sym ~coeff s))
       (Affine.const c) terms)

let env_of_seed seed s =
  match s with "i" -> seed | "j" -> (seed * 3) + 1 | _ -> 7 - seed

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

let property_tests =
  [
    prop "add commutes" (QCheck2.Gen.pair gen_affine gen_affine)
      (fun (a, b) -> Affine.equal (Affine.add a b) (Affine.add b a));
    prop "add associates"
      (QCheck2.Gen.triple gen_affine gen_affine gen_affine)
      (fun (a, b, c) ->
        Affine.equal
          (Affine.add a (Affine.add b c))
          (Affine.add (Affine.add a b) c));
    prop "sub then add roundtrips" (QCheck2.Gen.pair gen_affine gen_affine)
      (fun (a, b) -> Affine.equal (Affine.add (Affine.sub a b) b) a);
    prop "eval is linear" (QCheck2.Gen.pair gen_affine gen_affine)
      (fun (a, b) ->
        let env = env_of_seed 5 in
        Affine.eval ~env (Affine.add a b)
        = Affine.eval ~env a + Affine.eval ~env b);
    prop "scale matches repeated add" gen_affine (fun a ->
        Affine.equal (Affine.scale 3 a) (Affine.add a (Affine.add a a)));
    prop "diff_const agrees with eval"
      (QCheck2.Gen.pair gen_affine gen_affine)
      (fun (a, b) ->
        match Affine.diff_const a b with
        | None -> true
        | Some d ->
          List.for_all
            (fun seed ->
              let env = env_of_seed seed in
              Affine.eval ~env a - Affine.eval ~env b = d)
            [ 0; 1; 5; -3 ]);
    prop "equal forms print equally" (QCheck2.Gen.pair gen_affine gen_affine)
      (fun (a, b) ->
        (not (Affine.equal a b))
        || String.equal (Affine.to_string a) (Affine.to_string b));
  ]

let suite = unit_tests @ property_tests
