(* End-to-end pipeline tests: the Figure-1 driver loop, thresholds,
   configuration presets and reports. *)

open Lslp_core
open Helpers

let pipeline_tests =
  [
    tc "unprofitable regions stay scalar and unchanged" (fun () ->
        let f = kernel "motivation-loads" in
        let n = Lslp_ir.Block.length (Lslp_ir.Func.entry f) in
        let report = Pipeline.run ~config:Config.slp f in
        check_int "no vectorization" 0 report.Pipeline.vectorized_regions;
        check_int "block unchanged" n
          (Lslp_ir.Block.length (Lslp_ir.Func.entry f)));
    tc "threshold moves the profitability bar" (fun () ->
        (* figure 2 under SLP costs exactly 0: threshold 1 accepts it *)
        let f = kernel "motivation-loads" in
        let config = Config.with_threshold 1 Config.slp in
        let report = Pipeline.run ~config f in
        check_int "vectorized at threshold 1" 1
          report.Pipeline.vectorized_regions);
    tc "regions report their seed description" (fun () ->
        let f = kernel "motivation-loads" in
        let report = Pipeline.run ~config:Config.lslp f in
        match report.Pipeline.regions with
        | [ r ] ->
          check_bool "mentions A" true
            (String.length r.Pipeline.seed_desc > 0
             && r.Pipeline.seed_desc.[0] = 'A');
          check_int "VL" 2 r.Pipeline.lanes
        | _ -> Alcotest.fail "expected one region");
    tc "total_cost sums only vectorized regions" (fun () ->
        let f = kernel "motivation-loads" in
        let report = Pipeline.run ~config:Config.slp f in
        check_int "nothing vectorized -> 0" 0 report.Pipeline.total_cost);
    tc "run_cloned leaves the input untouched" (fun () ->
        let f = kernel "motivation-multi" in
        let before = Lslp_ir.Printer.func_to_string f in
        let _report, _g = Pipeline.run_cloned ~config:Config.lslp f in
        check_string "unchanged" before (Lslp_ir.Printer.func_to_string f));
    tc "multiple independent regions all vectorize" (fun () ->
        let f = compile {|
kernel k(i64 A[], i64 B[], i64 R[], i64 S[], i64 i) {
  R[i+0] = A[i+0] + B[i+0];
  R[i+1] = A[i+1] + B[i+1];
  S[i+0] = A[i+2] * B[i+2];
  S[i+1] = A[i+3] * B[i+3];
}
|} in
        let reference = Lslp_ir.Func.clone f in
        let report = Pipeline.run ~config:Config.lslp f in
        check_int "two regions" 2 report.Pipeline.vectorized_regions;
        assert_sound ~reference ~candidate:f ());
    tc "empty function is a no-op" (fun () ->
        let f = compile "kernel k() {}" in
        let report = Pipeline.run ~config:Config.lslp f in
        check_int "no regions" 0 (List.length report.Pipeline.regions));
  ]

let config_tests =
  [
    tc "preset names" (fun () ->
        check_string "lslp" "LSLP" Config.lslp.Config.name;
        check_string "slp" "SLP" Config.slp.Config.name;
        check_string "slp-nr" "SLP-NR" Config.slp_nr.Config.name;
        check_string "la" "LSLP-LA2" (Config.lslp_la 2).Config.name;
        check_string "multi" "LSLP-Multi3" (Config.lslp_multi 3).Config.name);
    tc "lslp_la keeps multi-nodes unlimited" (fun () ->
        check_bool "unlimited" true
          ((Config.lslp_la 0).Config.max_multinode_groups = None));
    tc "lslp_multi keeps look-ahead at 8" (fun () ->
        check_int "depth" 8 (Config.lslp_multi 2).Config.lookahead_depth);
    tc "multinode_limit clamps to >= 1" (fun () ->
        check_int "zero clamps" 1
          (Config.multinode_limit (Config.lslp_multi 0)));
    tc "effective_max_lanes respects the model" (fun () ->
        check_int "avx2" 4 (Config.effective_max_lanes Config.lslp Lslp_ir.Types.I64));
  ]

let sensitivity_tests =
  [
    tc "LA0 loses figure 2 (ties unbroken)" (fun () ->
        let f = kernel "motivation-loads" in
        let r0 = Pipeline.run ~config:(Config.lslp_la 0) (Lslp_ir.Func.clone f) in
        let r8 = Pipeline.run ~config:Config.lslp (Lslp_ir.Func.clone f) in
        check_bool "LA8 strictly better" true
          (r8.Pipeline.total_cost < r0.Pipeline.total_cost));
    tc "Multi1 loses figure 4 (chain not coarsened)" (fun () ->
        let f = kernel "motivation-multi" in
        let r1 =
          Pipeline.run ~config:(Config.lslp_multi 1) (Lslp_ir.Func.clone f)
        in
        let full = Pipeline.run ~config:Config.lslp (Lslp_ir.Func.clone f) in
        check_bool "full better" true
          (full.Pipeline.total_cost < r1.Pipeline.total_cost));
    tc "deeper look-ahead never hurts the motivating examples" (fun () ->
        List.iter
          (fun key ->
            let f = kernel key in
            let costs =
              List.map
                (fun d ->
                  (Pipeline.run ~config:(Config.lslp_la d)
                     (Lslp_ir.Func.clone f))
                    .Pipeline.total_cost)
                [ 1; 2; 4; 8 ]
            in
            let rec non_increasing = function
              | a :: (b :: _ as rest) -> a >= b && non_increasing rest
              | _ -> true
            in
            check_bool (key ^ " monotone") true (non_increasing costs))
          [ "motivation-loads"; "motivation-opcodes"; "motivation-multi" ]);
    tc "score-combine ablation: max also solves figure 2" (fun () ->
        let f = kernel "motivation-loads" in
        let config = Config.with_score_combine Config.Score_max Config.lslp in
        let report = Pipeline.run ~config f in
        check_int "vectorized" 1 report.Pipeline.vectorized_regions);
  ]

let suite = pipeline_tests @ config_tests @ sensitivity_tests
