(* Tests for the operand-reordering engine: pair scores, the recursive
   look-ahead score (pinned to the paper's Figure 7 example), get_best mode
   transitions, the matrix reorder (Listing 5) and the LLVM-4.0-faithful
   vanilla reorder. *)

open Lslp_ir
open Lslp_core
open Helpers

(* Build lane instructions inside one block so analyses work. *)
type env = { b : Builder.t }

let mk_env () =
  {
    b =
      Builder.create ~name:"reorder"
        ~args:
          [ ("A", Instr.Array_arg Types.I64); ("B", Instr.Array_arg Types.I64);
            ("C", Instr.Array_arg Types.I64); ("D", Instr.Array_arg Types.I64);
            ("i", Instr.Int_arg) ];
  }

let load env base k = Builder.load env.b ~base (Builder.idx k)
let shl env v k = Builder.binop env.b Opcode.Shl v (Builder.iconst k)
let ins = function Instr.Ins i -> i | _ -> assert false

let pair_score_tests =
  [
    tc "identical values score 2" (fun () ->
        let env = mk_env () in
        let x = load env "B" 0 in
        check_int "x,x" 2 (Reorder.pair_score x x);
        check_int "const self" 2
          (Reorder.pair_score (Builder.iconst 3) (Builder.iconst 3)));
    tc "consecutive loads score 2, non-consecutive 0" (fun () ->
        let env = mk_env () in
        let b0 = load env "B" 0 and b1 = load env "B" 1 in
        let c1 = load env "C" 1 in
        check_int "B0,B1" 2 (Reorder.pair_score b0 b1);
        check_int "B1,B0 (reverse)" 0 (Reorder.pair_score b1 b0);
        check_int "B0,C1" 0 (Reorder.pair_score b0 c1));
    tc "distinct constants score 1" (fun () ->
        check_int "1,4" 1
          (Reorder.pair_score (Builder.iconst 1) (Builder.iconst 4)));
    tc "same-opcode instructions score 1" (fun () ->
        let env = mk_env () in
        let s1 = shl env (load env "B" 0) 1 in
        let s2 = shl env (load env "C" 0) 2 in
        check_int "shl,shl" 1 (Reorder.pair_score s1 s2));
    tc "different kinds score 0" (fun () ->
        let env = mk_env () in
        let s = shl env (load env "B" 0) 1 in
        check_int "inst,const" 0 (Reorder.pair_score s (Builder.iconst 1)));
  ]

(* The paper's Figure 7: last = B[i+0] << 1; candidates are
   (B[i+1] << 2) — the matching one — and (C[i+1] << 3).  The figure's
   scores are 2 vs 1 with boolean matches; with our graded scores the
   ranking must be the same (matching candidate strictly higher). *)
let figure7_tests =
  [
    tc "figure 7 ranking" (fun () ->
        let env = mk_env () in
        let last = shl env (load env "B" 0) 1 in
        let good = shl env (load env "B" 1) 2 in
        let bad = shl env (load env "C" 1) 3 in
        let score v =
          Reorder.lookahead_score ~combine:Config.Score_sum last v ~level:1
        in
        check_bool "good > bad" true (score good > score bad);
        check_int "bad = 1 (consts only)" 1 (score bad));
    tc "level 0 degenerates to the base score" (fun () ->
        let env = mk_env () in
        let last = shl env (load env "B" 0) 1 in
        let good = shl env (load env "B" 1) 2 in
        check_int "same opclass" 1
          (Reorder.lookahead_score ~combine:Config.Score_sum last good ~level:0));
    tc "bijective pairing: squares do not outscore the diagonal" (fun () ->
        (* score(x*y, x'*y') must beat score(x*y, y'*y'): an all-pairs sum
           would tie them, the bijective pairing must not *)
        let env = mk_env () in
        let x = load env "B" 0 and y = load env "C" 0 in
        let x' = load env "B" 1 and y' = load env "C" 1 in
        let fm a b = Builder.binop env.b Opcode.Mul a b in
        let xy = fm x y in
        let xy' = fm x' y' in
        let yy' = fm y' y' in
        let score v =
          Reorder.lookahead_score ~combine:Config.Score_sum xy v ~level:1
        in
        check_bool "diagonal wins" true (score xy' > score yy'));
    tc "max combine takes the best pair only" (fun () ->
        let env = mk_env () in
        let last = shl env (load env "B" 0) 1 in
        let good = shl env (load env "B" 1) 2 in
        let sum =
          Reorder.lookahead_score ~combine:Config.Score_sum last good ~level:1
        in
        let mx =
          Reorder.lookahead_score ~combine:Config.Score_max last good ~level:1
        in
        check_bool "sum >= max" true (sum >= mx);
        check_bool "max positive" true (mx > 0));
    tc "non-commutative operands are not cross-paired" (fun () ->
        let env = mk_env () in
        let a = load env "B" 0 and b = load env "C" 0 in
        let a' = load env "B" 1 and b' = load env "C" 1 in
        let sub x y = Builder.binop env.b Opcode.Sub x y in
        let s1 = sub a b in
        let aligned = sub a' b' in
        let swapped = sub (ins b' |> fun i -> Instr.Ins i) a' in
        let score v =
          Reorder.lookahead_score ~combine:Config.Score_sum s1 v ~level:1
        in
        check_bool "aligned beats swapped" true (score aligned > score swapped));
  ]

let get_best_tests =
  [
    tc "single matching candidate is trivially chosen" (fun () ->
        let env = mk_env () in
        let b0 = load env "B" 0 and b1 = load env "B" 1 in
        let c1 = shl env (load env "C" 1) 1 in
        let best, mode =
          Reorder.get_best Config.lslp Reorder.Load_mode b0 [ c1; b1 ]
        in
        check_bool "picked b1" true
          (match best with Some v -> Instr.equal_value v b1 | None -> false);
        check_bool "mode stays LOAD" true (mode = Reorder.Load_mode));
    tc "no match fails the slot and consumes the default" (fun () ->
        let env = mk_env () in
        let b0 = load env "B" 0 in
        let c9 = load env "C" 9 in
        let best, mode =
          Reorder.get_best Config.lslp Reorder.Load_mode b0 [ c9 ]
        in
        check_bool "default returned" true
          (match best with Some v -> Instr.equal_value v c9 | None -> false);
        check_bool "mode FAILED" true (mode = Reorder.Failed_mode));
    tc "failed slots defer" (fun () ->
        let best, mode =
          Reorder.get_best Config.lslp Reorder.Failed_mode (Builder.iconst 0)
            [ Builder.iconst 1 ]
        in
        check_bool "deferred" true (best = None);
        check_bool "stays failed" true (mode = Reorder.Failed_mode));
    tc "look-ahead breaks opcode ties" (fun () ->
        let env = mk_env () in
        let last = shl env (load env "B" 0) 1 in
        let good = shl env (load env "B" 1) 4 in
        let bad = shl env (load env "C" 1) 3 in
        let best, _ =
          Reorder.get_best Config.lslp Reorder.Opcode_mode last [ bad; good ]
        in
        check_bool "good chosen" true
          (match best with Some v -> Instr.equal_value v good | None -> false));
    tc "depth 0 disables the tie-break" (fun () ->
        let env = mk_env () in
        let last = shl env (load env "B" 0) 1 in
        let good = shl env (load env "B" 1) 4 in
        let bad = shl env (load env "C" 1) 3 in
        let best, _ =
          Reorder.get_best (Config.lslp_la 0) Reorder.Opcode_mode last
            [ bad; good ]
        in
        check_bool "first match taken" true
          (match best with Some v -> Instr.equal_value v bad | None -> false));
    tc "splat mode looks for the same value" (fun () ->
        let env = mk_env () in
        let x = load env "B" 0 in
        let y = load env "C" 0 in
        let best, mode =
          Reorder.get_best Config.lslp Reorder.Splat_mode x [ y; x ]
        in
        check_bool "x found" true
          (match best with Some v -> Instr.equal_value v x | None -> false);
        check_bool "stays splat" true (mode = Reorder.Splat_mode));
    tc "init_mode classification" (fun () ->
        let env = mk_env () in
        check_bool "const" true
          (Reorder.init_mode (Builder.iconst 1) = Reorder.Const_mode);
        check_bool "load" true
          (Reorder.init_mode (load env "B" 0) = Reorder.Load_mode);
        check_bool "op" true
          (Reorder.init_mode (shl env (load env "B" 0) 1) = Reorder.Opcode_mode));
  ]

let matrix_tests =
  [
    tc "figure 2's operand matrix is straightened" (fun () ->
        (* slots x lanes: lane0 [shl(B0,1); shl(C0,2)],
           lane1 [shl(C1,3); shl(B1,4)] — LSLP must swap lane 1 *)
        let env = mk_env () in
        let s_b0 = shl env (load env "B" 0) 1 in
        let s_c0 = shl env (load env "C" 0) 2 in
        let s_c1 = shl env (load env "C" 1) 3 in
        let s_b1 = shl env (load env "B" 1) 4 in
        let matrix = [| [| s_b0; s_c1 |]; [| s_c0; s_b1 |] |] in
        let result = Reorder.reorder_matrix Config.lslp matrix in
        check_bool "slot0 = B chain" true
          (Instr.equal_value result.(0).(1) s_b1);
        check_bool "slot1 = C chain" true
          (Instr.equal_value result.(1).(1) s_c1));
    tc "lane 0 is never reordered" (fun () ->
        let env = mk_env () in
        let a = load env "B" 0 and b = load env "C" 0 in
        let a' = load env "B" 1 and b' = load env "C" 1 in
        let matrix = [| [| b; a' |]; [| a; b' |] |] in
        let result = Reorder.reorder_matrix Config.lslp matrix in
        check_bool "slot0 lane0 kept" true (Instr.equal_value result.(0).(0) b);
        check_bool "slot1 lane0 kept" true (Instr.equal_value result.(1).(0) a));
    tc "each lane's multiset of operands is preserved" (fun () ->
        let env = mk_env () in
        let vals =
          Array.init 3 (fun s ->
              Array.init 4 (fun l -> load env "B" ((s * 4) + l)))
        in
        let result = Reorder.reorder_matrix Config.lslp vals in
        for lane = 0 to 3 do
          let column m = List.init 3 (fun s -> m.(s).(lane)) in
          let key vs =
            List.sort compare
              (List.map (fun v -> (ins v).Instr.id) vs)
          in
          check_bool "same multiset" true (key (column vals) = key (column result))
        done);
    tc "splat mode engages across lanes" (fun () ->
        (* one slot is the same value in all lanes; it must stay together *)
        let env = mk_env () in
        let c = shl env (load env "D" 0) 1 in
        let b0 = load env "B" 0 and b1 = load env "B" 1
        and b2 = load env "B" 2 and b3 = load env "B" 3 in
        let matrix =
          [| [| b0; b1; c; b3 |]; [| c; c; b2; c |] |]
        in
        let result = Reorder.reorder_matrix Config.lslp matrix in
        (* slot1 should end all-c except lane0 decided by stripping *)
        let slot_of lane v =
          if Instr.equal_value result.(0).(lane) v then 0 else 1
        in
        let s_lane1 = slot_of 1 c and s_lane2 = slot_of 2 c in
        check_int "c stays in one slot" s_lane1 s_lane2);
    tc "constants prefer constants" (fun () ->
        let env = mk_env () in
        let b0 = load env "B" 0 and b1 = load env "B" 1 in
        let matrix =
          [| [| Builder.iconst 1; b1 |]; [| b0; Builder.iconst 7 |] |]
        in
        let result = Reorder.reorder_matrix Config.lslp matrix in
        check_bool "const slot" true
          (match result.(0).(1) with Instr.Const _ -> true | _ -> false);
        check_bool "load slot" true (Instr.equal_value result.(1).(1) b1));
    tc "empty matrix" (fun () ->
        check_int "no slots" 0
          (Array.length (Reorder.reorder_matrix Config.lslp [||])));
  ]

(* Vanilla (LLVM 4.0) reorder behaviors. *)
let vanilla_tests =
  [
    tc "listing 1: opcode mismatch fixed by swap" (fun () ->
        let env = mk_env () in
        let l1 = load env "B" 0 and l2 = load env "B" 1 in
        let s1 = Builder.binop env.b Opcode.Sub (load env "C" 0) (load env "C" 2) in
        let s2 = Builder.binop env.b Opcode.Sub (load env "C" 1) (load env "C" 3) in
        let add1 = Builder.binop env.b Opcode.Add s1 l1 in
        let add2 = Builder.binop env.b Opcode.Add l2 s2 in
        let left, right = Reorder.vanilla_pair [| ins add1; ins add2 |] in
        check_bool "left = subs" true
          (Instr.equal_value left.(0) s1 && Instr.equal_value left.(1) s2);
        check_bool "right = loads" true
          (Instr.equal_value right.(0) l1 && Instr.equal_value right.(1) l2));
    tc "figure 2: same-opcode operands are not touched" (fun () ->
        let env = mk_env () in
        let s_b0 = shl env (load env "B" 0) 1 in
        let s_c0 = shl env (load env "C" 0) 2 in
        let s_c1 = shl env (load env "C" 1) 3 in
        let s_b1 = shl env (load env "B" 1) 4 in
        let and1 = Builder.binop env.b Opcode.And s_b0 s_c0 in
        let and2 = Builder.binop env.b Opcode.And s_c1 s_b1 in
        let left, _right = Reorder.vanilla_pair [| ins and1; ins and2 |] in
        check_bool "lane1 left unchanged (mismatch remains)" true
          (Instr.equal_value left.(1) s_c1));
    tc "peel: lane-0 constant moves right" (fun () ->
        let env = mk_env () in
        let s = shl env (load env "B" 0) 1 in
        let s' = Builder.binop env.b Opcode.Add (load env "C" 0) (Builder.iconst 2) in
        let and1 = Builder.binop env.b Opcode.And s (Builder.iconst 17) in
        let and2 = Builder.binop env.b Opcode.And s' (Builder.iconst 19) in
        let left, right = Reorder.vanilla_pair [| ins and1; ins and2 |] in
        check_bool "lane0 left is const" true
          (match left.(0) with Instr.Const _ -> true | _ -> false);
        check_bool "lane0 right is shl" true (Instr.equal_value right.(0) s));
    tc "splat on the right is preserved" (fun () ->
        let env = mk_env () in
        let c = shl env (load env "D" 0) 1 in
        let x0 = load env "B" 0 and x1 = load env "B" 1 in
        let m0 = Builder.binop env.b Opcode.Mul x0 c in
        let m1 = Builder.binop env.b Opcode.Mul c x1 in
        let left, right = Reorder.vanilla_pair [| ins m0; ins m1 |] in
        check_bool "right all c" true
          (Instr.equal_value right.(0) c && Instr.equal_value right.(1) c);
        check_bool "left loads" true
          (Instr.equal_value left.(0) x0 && Instr.equal_value left.(1) x1));
    tc "trailing pass extends consecutive load chains" (fun () ->
        (* load a0|b0 then b1|a1: the final pass swaps lane 1 *)
        let env = mk_env () in
        let a0 = load env "B" 0 and a1 = load env "B" 1 in
        let b0 = load env "C" 0 and b1 = load env "C" 1 in
        let add1 = Builder.binop env.b Opcode.Add a0 b0 in
        let add2 = Builder.binop env.b Opcode.Add b1 a1 in
        let left, right = Reorder.vanilla_pair [| ins add1; ins add2 |] in
        check_bool "left = a0,a1" true
          (Instr.equal_value left.(0) a0 && Instr.equal_value left.(1) a1);
        check_bool "right = b0,b1" true
          (Instr.equal_value right.(0) b0 && Instr.equal_value right.(1) b1));
    tc "no_reorder keeps operands as written" (fun () ->
        let env = mk_env () in
        let a0 = load env "B" 0 and b0 = load env "C" 0 in
        let add1 = Builder.binop env.b Opcode.Add a0 b0 in
        let add2 = Builder.binop env.b Opcode.Add b0 a0 in
        let left, right = Reorder.no_reorder_pair [| ins add1; ins add2 |] in
        check_bool "kept" true
          (Instr.equal_value left.(0) a0 && Instr.equal_value left.(1) b0
           && Instr.equal_value right.(0) b0 && Instr.equal_value right.(1) a0));
  ]

(* ---- properties ---------------------------------------------------

   Randomized laws for the scoring primitives.  [Addr.consecutive] is
   directional (a, then a + lanes), so load/load pairs are legitimately
   asymmetric; every other shape must score symmetrically, and the boolean
   matcher must agree with a positive graded score. *)
let property_tests =
  let open QCheck2 in
  let pp_vdesc = function
    | `Load (a, o) -> Fmt.str "load%d[%d]" a o
    | `Const c -> Fmt.str "const%d" c
    | `Shl (a, o, k) -> Fmt.str "shl(load%d[%d],%d)" a o k
  in
  let gen_vdesc =
    Gen.oneof
      [ Gen.map2 (fun a o -> `Load (a, o)) (Gen.int_bound 1) (Gen.int_bound 7);
        Gen.map (fun c -> `Const c) (Gen.int_bound 9);
        Gen.map3
          (fun a o k -> `Shl (a, o, k))
          (Gen.int_bound 1) (Gen.int_bound 7) (Gen.int_range 1 4) ]
  in
  let arr = function 0 -> "B" | _ -> "C" in
  let materialize env = function
    | `Load (a, o) -> load env (arr a) o
    | `Const c -> Builder.iconst c
    | `Shl (a, o, k) -> shl env (load env (arr a) o) k
  in
  let is_load_desc = function
    | `Load _ -> true
    | `Const _ | `Shl _ -> false
  in
  let prop ?(count = 500) name gen print p =
    QCheck_alcotest.to_alcotest (Test.make ~count ~name ~print gen p)
  in
  let pair_gen = Gen.pair gen_vdesc gen_vdesc in
  let pair_print (a, b) = Fmt.str "(%s, %s)" (pp_vdesc a) (pp_vdesc b) in
  [
    prop "pair_score is symmetric off load/load pairs" pair_gen pair_print
      (fun (d1, d2) ->
        assume (not (is_load_desc d1 && is_load_desc d2));
        let env = mk_env () in
        let v1 = materialize env d1 and v2 = materialize env d2 in
        Reorder.pair_score v1 v2 = Reorder.pair_score v2 v1);
    prop "consecutive_or_match is symmetric off load/load pairs" pair_gen
      pair_print
      (fun (d1, d2) ->
        assume (not (is_load_desc d1 && is_load_desc d2));
        let env = mk_env () in
        let v1 = materialize env d1 and v2 = materialize env d2 in
        Reorder.consecutive_or_match v1 v2
        = Reorder.consecutive_or_match v2 v1);
    prop "matcher agrees with a positive score off load/load pairs" pair_gen
      pair_print
      (fun (d1, d2) ->
        assume (not (is_load_desc d1 && is_load_desc d2));
        let env = mk_env () in
        let v1 = materialize env d1 and v2 = materialize env d2 in
        Reorder.consecutive_or_match v1 v2 = (Reorder.pair_score v1 v2 > 0));
    prop "scores stay in the 0..2 grade range" pair_gen pair_print
      (fun (d1, d2) ->
        let env = mk_env () in
        let v1 = materialize env d1 and v2 = materialize env d2 in
        let s = Reorder.pair_score v1 v2 in
        0 <= s && s <= 2);
    prop "an identical value outscores any same-opcode sibling"
      (Gen.pair
         (Gen.pair (Gen.int_bound 1) (Gen.int_bound 7))
         (Gen.pair (Gen.int_bound 1) (Gen.int_bound 7)))
      (fun ((a1, o1), (a2, o2)) ->
        Fmt.str "shl(load%d[%d]) vs shl(load%d[%d])" a1 o1 a2 o2)
      (fun ((a1, o1), (a2, o2)) ->
        let env = mk_env () in
        let v1 = materialize env (`Shl (a1, o1, 1)) in
        let v2 = materialize env (`Shl (a2, o2, 1)) in
        (* v1 and v2 are distinct instructions even when their descriptions
           coincide, so the self pairing must strictly win *)
        Reorder.pair_score v1 v1 = 2
        && Reorder.pair_score v1 v1 > Reorder.pair_score v1 v2);
    prop "loads score directionally: 2 iff the offset steps by one"
      (Gen.pair (Gen.int_bound 7) (Gen.int_bound 7))
      (fun (o1, o2) -> Fmt.str "B[%d] vs B[%d]" o1 o2)
      (fun (o1, o2) ->
        let env = mk_env () in
        let v1 = load env "B" o1 and v2 = load env "B" o2 in
        Reorder.pair_score v1 v2 = (if o2 = o1 + 1 then 2 else 0));
  ]

let suite =
  pair_score_tests @ figure7_tests @ get_best_tests @ matrix_tests
  @ vanilla_tests @ property_tests
