(* 32-bit element types: f32/i32 lanes double the native vector width
   (8 lanes on the 256-bit target).  The kernel-language frontend stays
   64-bit like the paper's kernels; these tests drive the width-polymorphic
   IR directly through the Builder. *)

open Lslp_ir
open Lslp_core
open Helpers

(* R[8i+k] = A[8i+k] * B[8i+k] + C[8i+k], 8 f32 lanes, with a commuted
   multiply in odd lanes so the reorderer has work to do. *)
let build_f32_kernel () =
  let b =
    Builder.create ~name:"fma8"
      ~args:
        [ ("R", Instr.Array_arg Types.F32); ("A", Instr.Array_arg Types.F32);
          ("B", Instr.Array_arg Types.F32); ("C", Instr.Array_arg Types.F32);
          ("i", Instr.Int_arg) ]
  in
  for k = 0 to 7 do
    let idx = Affine.add_const k (Affine.sym ~coeff:8 "i") in
    let a = Builder.load b ~base:"A" idx in
    let c = Builder.load b ~base:"B" idx in
    let m =
      if k mod 2 = 0 then Builder.binop b Opcode.Fmul a c
      else Builder.binop b Opcode.Fmul c a
    in
    let s = Builder.binop b Opcode.Fadd m (Builder.load b ~base:"C" idx) in
    Builder.store b ~base:"R" idx s
  done;
  let f = Builder.func b in
  ignore (Cse.run f);
  Verifier.verify_exn f;
  f

let build_i32_kernel () =
  let b =
    Builder.create ~name:"mask8"
      ~args:
        [ ("R", Instr.Array_arg Types.I32); ("A", Instr.Array_arg Types.I32);
          ("i", Instr.Int_arg) ]
  in
  for k = 0 to 7 do
    let idx = Affine.add_const k (Affine.sym ~coeff:8 "i") in
    let a = Builder.load b ~base:"A" idx in
    let shifted = Builder.binop b Opcode.Shl a (Builder.iconst32 2) in
    let masked = Builder.binop b Opcode.And shifted (Builder.iconst32 255) in
    Builder.store b ~base:"R" idx masked
  done;
  let f = Builder.func b in
  ignore (Cse.run f);
  Verifier.verify_exn f;
  f

let suite =
  [
    tc "32-bit scalars halve the element size" (fun () ->
        check_int "i32" 4 (Types.scalar_size_bytes Types.I32);
        check_int "f32" 4 (Types.scalar_size_bytes Types.F32);
        check_bool "f32 is float" true (Types.is_float_scalar Types.F32);
        check_bool "i32 is not" false (Types.is_float_scalar Types.I32));
    tc "256-bit target fits 8 x 32-bit lanes" (fun () ->
        check_int "f32" 8
          (Lslp_costmodel.Model.max_lanes Lslp_costmodel.Model.skylake_avx2
             Types.F32);
        check_int "i32" 8
          (Lslp_costmodel.Model.max_lanes Lslp_costmodel.Model.skylake_avx2
             Types.I32);
        check_int "config" 8 (Config.effective_max_lanes Config.lslp Types.F32));
    tc "opcodes are width-polymorphic" (fun () ->
        check_bool "fadd on f32" true (Opcode.binop_accepts Opcode.Fadd Types.F32);
        check_bool "fadd not on i32" false
          (Opcode.binop_accepts Opcode.Fadd Types.I32);
        check_bool "shl on i32" true (Opcode.binop_accepts Opcode.Shl Types.I32);
        check_bool "neg on i32" true (Opcode.unop_accepts Opcode.Neg Types.I32));
    tc "builder rejects mixed-width operands" (fun () ->
        let b =
          Builder.create ~name:"w"
            ~args:[ ("A", Instr.Array_arg Types.F32);
                    ("B", Instr.Array_arg Types.F64); ("i", Instr.Int_arg) ]
        in
        let a = Builder.load b ~base:"A" (Affine.sym "i") in
        let c = Builder.load b ~base:"B" (Affine.sym "i") in
        check_bool "raises" true
          (try ignore (Builder.binop b Opcode.Fadd a c); false
           with Builder.Type_error _ -> true));
    tc "f32 kernel vectorizes to 8 lanes" (fun () ->
        let f = build_f32_kernel () in
        let reference = Func.clone f in
        let report = Pipeline.run ~config:Config.lslp f in
        check_int "one region" 1 report.Pipeline.vectorized_regions;
        check_bool "8-wide store" true
          (count_insts
             (fun i -> match i.Instr.kind with
                | Instr.Store (a, _) -> a.Instr.access_lanes = 8
                | _ -> false)
             f
           > 0);
        assert_sound ~reference ~candidate:f ());
    tc "i32 kernel vectorizes to 8 lanes" (fun () ->
        let f = build_i32_kernel () in
        let reference = Func.clone f in
        let report = Pipeline.run ~config:Config.lslp f in
        check_int "one region" 1 report.Pipeline.vectorized_regions;
        check_bool "8-wide and" true
          (count_insts
             (fun i ->
               Instr.binop i = Some Opcode.And
               && Types.lanes i.Instr.ty = 8)
             f
           > 0);
        assert_sound ~reference ~candidate:f ());
    tc "f32 arithmetic is single-rounded in the interpreter" (fun () ->
        (* 1 + 2^-40 rounds back to 1.0f in single precision *)
        let open Lslp_interp.Eval in
        match
          scalar_binop Opcode.Fadd (VF32 1.0) (VF32 (Float.ldexp 1.0 (-40)))
        with
        | VF32 r -> check_bool "rounded to 1.0" true (r = 1.0)
        | _ -> Alcotest.fail "wrong kind");
    tc "i32 arithmetic wraps at 32 bits" (fun () ->
        let open Lslp_interp.Eval in
        match scalar_binop Opcode.Add (VI32 Int32.max_int) (VI32 1l) with
        | VI32 r -> check_bool "wrapped" true (Int32.equal r Int32.min_int)
        | _ -> Alcotest.fail "wrong kind");
    tc "i32 shift amounts mask to 5 bits" (fun () ->
        let open Lslp_interp.Eval in
        match scalar_binop Opcode.Shl (VI32 3l) (VI32 32l) with
        | VI32 r -> check_bool "shl 32 = shl 0" true (Int32.equal r 3l)
        | _ -> Alcotest.fail "wrong kind");
    tc "32-bit constants print distinctly" (fun () ->
        check_string "i32" "5l"
          (Fmt.str "%a" Printer.pp_const_readable (Instr.Cint32 5l));
        check_bool "f32 suffixed" true
          (let s =
             Fmt.str "%a" Printer.pp_const_readable (Instr.Cfloat32 2.5)
           in
           String.length s > 0 && s.[String.length s - 1] = 'f'));
    tc "memory rejects width confusion" (fun () ->
        let m = Lslp_interp.Memory.create () in
        Lslp_interp.Memory.alloc m "A" Types.I32 ~size:4;
        check_bool "i64 read of i32 array raises" true
          (try ignore (Lslp_interp.Memory.read_int m "A" 0); false
           with Lslp_interp.Memory.Fault _ -> true));
    tc "f32 memory stores round to single precision" (fun () ->
        let m = Lslp_interp.Memory.create () in
        Lslp_interp.Memory.alloc m "A" Types.F32 ~size:1;
        Lslp_interp.Memory.write_float32 m "A" 0 (1.0 +. Float.ldexp 1.0 (-40));
        check_bool "rounded" true
          (Lslp_interp.Memory.read_float32 m "A" 0 = 1.0));
    tc "reduction over f32 uses the 8-lane width" (fun () ->
        let b =
          Builder.create ~name:"sum8"
            ~args:[ ("S", Instr.Array_arg Types.F32);
                    ("A", Instr.Array_arg Types.F32); ("i", Instr.Int_arg) ]
        in
        let leaves =
          List.init 8 (fun k ->
              Builder.load b ~base:"A"
                (Affine.add_const k (Affine.sym ~coeff:8 "i")))
        in
        let sum =
          match leaves with
          | v :: rest ->
            List.fold_left (fun acc v -> Builder.binop b Opcode.Fadd acc v) v rest
          | [] -> assert false
        in
        Builder.store b ~base:"S" (Affine.sym "i") sum;
        let f = Builder.func b in
        let reference = Func.clone f in
        let regions = Reduction.run ~config:Config.lslp (Func.entry f) in
        check_bool "vectorized" true
          (List.exists (fun r -> r.Reduction.vectorized) regions);
        check_bool "8-lane reduce" true
          (count_insts
             (fun i -> match i.Instr.kind with
                | Instr.Reduce (_, v) ->
                  (match Instr.value_ty v with
                   | Some ty -> Types.lanes ty = 8
                   | None -> false)
                | _ -> false)
             f
           > 0);
        assert_sound ~reference ~candidate:f ());
  ]
