# Convenience wrappers around dune.

.PHONY: all test check bench ci clean fuzz lint lint-exceptions \
  domain-smoke serve-smoke bench-lint stats-golden bench-check \
  bench-baseline bench-speed bench-speed-report bench-serve \
  bench-serve-report trace-golden cond-smoke metrics-check \
  metrics-baseline metrics-smoke

all:
	dune build

test:
	dune runtest

# Build + tests + `lslpc analyze` (with the legality validator) over every
# example kernel.  The commit gate.
check:
	dune build @check

# What CI runs (see .github/workflows/ci.yml): build, test suites, then
# the analyze/legality gate over the example kernels.
ci:
	dune build
	dune runtest
	dune build @check
	$(MAKE) lint
	$(MAKE) domain-smoke
	$(MAKE) serve-smoke
	$(MAKE) fuzz
	$(MAKE) cond-smoke
	$(MAKE) stats-golden
	$(MAKE) trace-golden
	$(MAKE) bench-check
	$(MAKE) metrics-check
	$(MAKE) metrics-smoke

# The pinned-seed differential fuzz run CI's fuzz-smoke job executes:
# 500 random programs through the pipeline, checked against the scalar
# oracle, with and without injected faults.
fuzz:
	dune exec bin/lslpc.exe -- fuzz --cases 500 --seed 42

# Branching gate: the masked-IR fuzz arm — 500 pinned-seed programs of
# guarded stores, selects and masked loads through the pipeline against
# the scalar oracle — plus every cond.* catalog kernel through analyze
# with the legality validator.
cond-smoke:
	dune exec bin/lslpc.exe -- fuzz --cases 500 --seed 42 --config cond
	dune exec bin/lslpc.exe -- analyze --kernel cond.abs
	dune exec bin/lslpc.exe -- analyze --kernel cond.clamp
	dune exec bin/lslpc.exe -- analyze --kernel cond.saxpy-guard
	dune exec bin/lslpc.exe -- analyze --kernel cond.max-mask

# Telemetry gate: the golden counter tables (test/cram/stats.t) plus the
# cache-differential fuzz — 200 random programs whose cached and uncached
# look-ahead scoring must agree on IR, remarks and region outcomes.
stats-golden:
	dune build @test/cram/runtest
	dune exec bin/lslpc.exe -- fuzz --cases 200 --seed 42 --config cache-diff

# The project's own static-analysis pass (lib/lint): R1 global mutable
# state, R2 ambient Random, R3 raising primitives, R4 wall-clock reads.
# Fails on any unwaived finding and on stale entries in lint.waivers.
lint:
	dune exec bin/lint.exe -- --check-waivers lib bin

# Historical alias: the exception-discipline gate is now lslp-lint rule
# R3 (which also sees invalid_arg and bare raises of predefined
# exceptions, with per-site waivers in lint.waivers).
lint-exceptions:
	dune exec bin/lint.exe -- --rule R3 lib bin

# Domain-safety proof behind the planned parallel compile service: the
# whole catalog compiled on 8 concurrent domains must reproduce the
# sequential IR, remarks and counters (modulo id alpha-renaming).
domain-smoke:
	dune exec bin/lslpc.exe -- domains --jobs 8

# Fault-survival gate for the batch compile service: the catalog twice
# through a 4-domain pool with one injected worker crash (job 3, round 1)
# and one cache poisoning (job 30 = kernel 2, round 2).  The batch must
# complete, every undamaged job must match, and the run must record
# EXACTLY two degradations — the crashed job's typed failure and the
# poisoned entry's verified eviction (exit 1 on any other count).  The
# sharded fuzz then proves 4-domain fuzzing is case-by-case identical to
# sequential, and the waiver audit covers the new lib/service code.
serve-smoke:
	dune exec bin/lslpc.exe -- batch --jobs 4 --repeat 2 \
	  --inject worker-raise@3 --inject cache-poison@30 \
	  --expect-degradations 2 --stats
	dune exec bin/lslpc.exe -- batch --jobs 4 --deadline-steps 50000 \
	  --inject worker-hang@5 --expect-degradations 1
	dune exec bin/lslpc.exe -- batch --jobs 8 \
	  --inject queue-full@7 --expect-degradations 1
	dune exec bin/lslpc.exe -- fuzz --cases 120 --seed 42 --jobs 4
	dune exec bin/lint.exe -- --check-waivers lib bin

# Refresh the committed lint bench entry (files scanned, findings by
# rule, wall time).
bench-lint:
	dune exec bin/lint.exe -- --check-waivers \
	  --bench-out bench_results/BENCH_lint.json lib bin

# Tracing gate: the golden decision logs (test/cram/trace.t) plus the
# exporter self-check — every catalog kernel traced in all three formats,
# each Chrome stream re-parsed through the project's own JSON reader.
trace-golden:
	dune build @test/cram/runtest
	dune exec bin/lslpc.exe -- trace --all

# Tolerance-free counter regression gate: compare today's deterministic
# pipeline counters (score evals, graph nodes, regions, emitted instrs)
# against the committed snapshot.  After an intended change, regenerate
# with `make bench-baseline` and commit the diff.
bench-check:
	dune exec bench/baseline.exe -- --check
	dune exec bench/baseline.exe -- --selftest

bench-baseline:
	dune exec bench/baseline.exe -- --write

# Compile-throughput harness: the whole catalog compiled 1000x per config
# (one-shot wall clock + a bechamel estimate), appended as a dated run to
# bench_results/BENCH_speed.json so the trajectory across PRs is kept.
# Report-only in CI: timings are machine-dependent, so the gate for perf
# work is the counter baseline (bench-check), not this file.
bench-speed:
	dune exec bench/speed.exe -- --reps 1000

bench-speed-report:
	dune exec bench/speed.exe -- --reps 300 --no-write

# Batch-service throughput: catalog x 1000 as one batch through the pool
# (sequential floor, N domains, cache cold vs warm with every hit
# legality-re-verified), appended to bench_results/BENCH_serve.json.
# The warm-vs-cold speedup is gated at 5x — that ratio measures work
# skipped safely, which unlike wall-clock survives noisy runners.
bench-serve:
	dune exec bench/serve.exe -- --reps 1000 --min-warm-speedup 5

bench-serve-report:
	dune exec bench/serve.exe -- --reps 100 --no-write --min-warm-speedup 5

# Tolerance-free exposition gate for the observability layer: two
# identical 1-domain batches must dump byte-identical Prometheus metrics
# and flight-recorder JSONL, and the metrics dump must match the
# committed baseline exactly (every value is jobs/ticks/steps, never
# wall-clock, so no tolerances are needed).  After an intended metrics
# change, regenerate with `make metrics-baseline` and commit the diff.
metrics-check:
	dune exec bin/lslpc.exe -- batch --jobs 1 --repeat 2 \
	  --metrics-out _build/metrics_a.prom --flight-out _build/flight_a.jsonl
	dune exec bin/lslpc.exe -- batch --jobs 1 --repeat 2 \
	  --metrics-out _build/metrics_b.prom --flight-out _build/flight_b.jsonl
	cmp _build/metrics_a.prom _build/metrics_b.prom
	cmp _build/flight_a.jsonl _build/flight_b.jsonl
	cmp _build/metrics_a.prom bench_results/METRICS_baseline.prom

metrics-baseline:
	dune exec bin/lslpc.exe -- batch --jobs 1 --repeat 2 \
	  --metrics-out bench_results/METRICS_baseline.prom

# Observability smoke: a faulted multi-domain batch must emit a
# Prometheus dump that lslpc's own parser accepts and whose degradation
# counters (failed + shed + evicted) reconcile with the batch gate's
# count; the JSON exposition must reconcile to the same number.
metrics-smoke:
	dune exec bin/lslpc.exe -- batch --jobs 4 \
	  --inject worker-raise@3 --inject queue-full@7 \
	  --expect-degradations 2 --metrics-out _build/metrics_smoke.prom
	dune exec bin/lslpc.exe -- metrics-verify _build/metrics_smoke.prom \
	  --expect-degradations 2
	dune exec bin/lslpc.exe -- batch --jobs 4 \
	  --inject worker-raise@3 --inject queue-full@7 \
	  --expect-degradations 2 --metrics-out _build/metrics_smoke.json \
	  --metrics-format json
	dune exec bin/lslpc.exe -- metrics-verify _build/metrics_smoke.json \
	  --metrics-format json --expect-degradations 2

bench:
	dune exec bench/main.exe

clean:
	dune clean
