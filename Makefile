# Convenience wrappers around dune.

.PHONY: all test check bench clean

all:
	dune build

test:
	dune runtest

# Build + tests + `lslpc analyze` (with the legality validator) over every
# example kernel.  The commit gate.
check:
	dune build @check

bench:
	dune exec bench/main.exe

clean:
	dune clean
