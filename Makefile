# Convenience wrappers around dune.

.PHONY: all test check bench ci clean fuzz lint-exceptions stats-golden \
  bench-check bench-baseline trace-golden

all:
	dune build

test:
	dune runtest

# Build + tests + `lslpc analyze` (with the legality validator) over every
# example kernel.  The commit gate.
check:
	dune build @check

# What CI runs (see .github/workflows/ci.yml): build, test suites, then
# the analyze/legality gate over the example kernels.
ci:
	dune build
	dune runtest
	dune build @check
	$(MAKE) lint-exceptions
	$(MAKE) fuzz
	$(MAKE) stats-golden
	$(MAKE) trace-golden
	$(MAKE) bench-check

# The pinned-seed differential fuzz run CI's fuzz-smoke job executes:
# 500 random programs through the pipeline, checked against the scalar
# oracle, with and without injected faults.
fuzz:
	dune exec bin/lslpc.exe -- fuzz --cases 500 --seed 42

# Telemetry gate: the golden counter tables (test/cram/stats.t) plus the
# cache-differential fuzz — 200 random programs whose cached and uncached
# look-ahead scoring must agree on IR, remarks and region outcomes.
stats-golden:
	dune build @test/cram/runtest
	dune exec bin/lslpc.exe -- fuzz --cases 200 --seed 42 --config cache-diff

# Library code must not raise bare Failure: the fail-soft pipeline's
# guarantees rest on typed errors (Codegen.Error, Transact.Check_failed,
# Budget.Exhausted).  Grows an allowlist via --exclude if a file ever
# earns an exemption; none does today.
lint-exceptions:
	@if grep -rn --include='*.ml' --include='*.mli' -w 'failwith' lib/; then \
	  echo 'error: failwith in lib/ -- raise a typed error instead'; \
	  exit 1; \
	else \
	  echo 'lint-exceptions: OK (no failwith in lib/)'; \
	fi

# Tracing gate: the golden decision logs (test/cram/trace.t) plus the
# exporter self-check — every catalog kernel traced in all three formats,
# each Chrome stream re-parsed through the project's own JSON reader.
trace-golden:
	dune build @test/cram/runtest
	dune exec bin/lslpc.exe -- trace --all

# Tolerance-free counter regression gate: compare today's deterministic
# pipeline counters (score evals, graph nodes, regions, emitted instrs)
# against the committed snapshot.  After an intended change, regenerate
# with `make bench-baseline` and commit the diff.
bench-check:
	dune exec bench/baseline.exe -- --check
	dune exec bench/baseline.exe -- --selftest

bench-baseline:
	dune exec bench/baseline.exe -- --write

bench:
	dune exec bench/main.exe

clean:
	dune clean
