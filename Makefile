# Convenience wrappers around dune.

.PHONY: all test check bench ci clean

all:
	dune build

test:
	dune runtest

# Build + tests + `lslpc analyze` (with the legality validator) over every
# example kernel.  The commit gate.
check:
	dune build @check

# What CI runs (see .github/workflows/ci.yml): build, test suites, then
# the analyze/legality gate over the example kernels.
ci:
	dune build
	dune runtest
	dune build @check

bench:
	dune exec bench/main.exe

clean:
	dune clean
